/**
 * @file
 * Figure 20: LLaVA 32-token generation for one image on RTX 4090 and
 * M2 Ultra vs HF Transformers, vLLM and llama.cpp.
 *
 * Substitution (docs/DESIGN.md §1): the CLIP ViT-L/14-336 vision tower is a
 * 24-layer transformer prefill over 577 patch tokens; its output feeds a
 * Vicuna-7B (Llama2 architecture) prefill of 577 image + 32 prompt
 * tokens followed by 32 decode steps.
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    using frontend::LlamaConfig;

    LlamaConfig vit;
    vit.name = "CLIP-ViT-L/14";
    vit.hiddenSize = 1024;
    vit.numLayers = 24;
    vit.numHeads = 16;
    vit.headDim = 64;
    vit.ffnSize = 4096;
    vit.vocabSize = 1024; // patch projection stand-in
    vit.maxContext = 640;
    vit.fixedBatch = 1;
    vit.activation = "gelu";

    LlamaConfig vicuna = LlamaConfig::llama2_7b();
    vicuna.name = "Vicuna-7B";
    vicuna.fixedBatch = 1;

    const int64_t image_tokens = 577;
    const int64_t prompt_tokens = 32;
    const int64_t gen_tokens = 32;

    auto relaxGenerateMs = [&](const device::DeviceSpec& spec) {
        frontend::CompileOptions vit_options;
        vit_options.bounds = {{"b", 1}, {"n", 640}, {"m", 640}};
        CompiledModel vision = compileModel(vit, spec, vit_options);
        double total = relaxPrefillMs(vision, 1, image_tokens);

        frontend::CompileOptions llm_options;
        llm_options.bounds = {{"b", 1}, {"n", 640}, {"m", 704}};
        CompiledModel llm = compileModel(vicuna, spec, llm_options);
        total += relaxPrefillMs(llm, 1, image_tokens + prompt_tokens);
        total += (double)gen_tokens *
                 relaxDecodeMsPerToken(llm, 1,
                                       image_tokens + prompt_tokens, 8);
        return total;
    };
    auto baselineGenerateMs = [&](const device::DeviceSpec& spec,
                                  const baselines::FrameworkTraits& t) {
        double total = baselines::prefillUs(vit, 1, image_tokens, spec, t);
        total += baselines::prefillUs(vicuna, 1,
                                      image_tokens + prompt_tokens, spec, t);
        baselines::DecodeWorkload workload{vicuna, 1,
                                           image_tokens + prompt_tokens};
        total +=
            (double)gen_tokens * baselines::decodeStepUs(workload, spec, t);
        return total / 1e3;
    };

    std::cout << "=== Figure 20: LLaVA 32-token generation time (ms) "
              << "===\n\n";
    for (const auto& spec :
         {device::rtx4090(), device::appleM2Ultra()}) {
        TablePrinter table({spec.name, "time (ms)"});
        table.addRow({"HF Transformers",
                      TablePrinter::fmt(baselineGenerateMs(
                          spec, baselines::hfTransformers()))});
        if (baselines::supportsBackend(baselines::vllm(), spec)) {
            table.addRow({"vLLM", TablePrinter::fmt(baselineGenerateMs(
                                      spec, baselines::vllm()))});
        }
        table.addRow({"llama.cpp",
                      TablePrinter::fmt(baselineGenerateMs(
                          spec, baselines::llamaCpp()))});
        table.addRow({"Relax (Ours)",
                      TablePrinter::fmt(relaxGenerateMs(spec))});
        table.print();
        std::cout << "\n";
    }
    return 0;
}
