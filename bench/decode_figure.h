/**
 * @file
 * Shared driver for the decode-latency figures (Fig. 14/15/16): per-token
 * decode latency across batch sizes for several models and frameworks on
 * one device.
 */
#ifndef RELAX_BENCH_DECODE_FIGURE_H_
#define RELAX_BENCH_DECODE_FIGURE_H_

#include "common.h"

namespace relax {
namespace bench {

inline void
runDecodeFigure(const std::string& title, const device::DeviceSpec& spec,
                const std::vector<frontend::LlamaConfig>& models,
                const std::vector<baselines::FrameworkTraits>& frameworks,
                const std::vector<int64_t>& batches = {1, 16, 32, 64})
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "Decode token latency (ms/tok), 32 tokens, KV start 128\n\n";
    for (const auto& model : models) {
        TablePrinter table([&] {
            std::vector<std::string> header{model.name + " | batch"};
            for (int64_t b : batches) header.push_back(std::to_string(b));
            return header;
        }());
        for (const auto& traits : frameworks) {
            if (!baselines::supportsBackend(traits, spec)) continue;
            std::vector<std::string> row{traits.name};
            for (int64_t batch : batches) {
                row.push_back(TablePrinter::fmt(baselineDecodeMsPerToken(
                    model, spec, traits, batch)));
            }
            table.addRow(std::move(row));
        }
        {
            std::vector<std::string> row{"Relax (Ours)"};
            for (int64_t batch : batches) {
                frontend::LlamaConfig per_batch = model;
                per_batch.fixedBatch = batch;
                CompiledModel compiled = compileModel(per_batch, spec);
                row.push_back(TablePrinter::fmt(
                    relaxDecodeMsPerToken(compiled, batch)));
            }
            table.addRow(std::move(row));
        }
        table.print();
        std::cout << "\n";
    }
}

} // namespace bench
} // namespace relax

#endif // RELAX_BENCH_DECODE_FIGURE_H_
