/**
 * @file
 * Table 2: Llama3-8B activation memory with and without static memory
 * planning, across successive prefills of lengths 128/256/512/1024 and
 * successive decodes of batch 1/16/32/64 (§5.2). With planning and upper
 * bounds, storage is allocated once and reused across all shapes; without
 * it, the runtime pool allocates anew whenever an unseen size appears.
 */
#include "common.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    auto spec = device::rtx4090();
    auto config = frontend::LlamaConfig::llama3_8b();

    auto measure_prefill = [&](bool planning) {
        frontend::CompileOptions options;
        options.enableMemoryPlanning = planning;
        options.bounds = {{"b", 1}, {"n", 1024}, {"m", 1056}};
        frontend::LlamaConfig cfg = config;
        cfg.fixedBatch = 1;
        CompiledModel model = compileModel(cfg, spec, options);
        for (int64_t tokens : {128, 256, 512, 1024}) {
            model.machine->invoke("prefill", prefillArgs(cfg, 1, tokens));
        }
        return (double)model.dev->totalAllocatedBytes() / (1 << 20);
    };
    auto measure_decode = [&](bool planning) {
        frontend::CompileOptions options;
        options.enableMemoryPlanning = planning;
        options.bounds = {{"b", 64}, {"n", 1024}, {"m", 192}};
        double total = 0;
        for (int64_t batch : {1, 16, 32, 64}) {
            frontend::LlamaConfig cfg = config;
            cfg.fixedBatch = batch;
            CompiledModel model = compileModel(cfg, spec, options);
            for (int step = 0; step < 4; ++step) {
                model.machine->invoke("decode",
                                      decodeArgs(cfg, batch, 128 + step));
            }
            total += (double)model.dev->totalAllocatedBytes() / (1 << 20);
        }
        return total;
    };

    std::cout << "=== Table 2: Llama3-8B activation memory (MiB) ===\n\n";
    TablePrinter prefill({"Llama3-8B Prefill", "MiB"});
    prefill.addRow({"Relax w/o planning",
                    TablePrinter::fmt(measure_prefill(false), 1)});
    prefill.addRow({"Relax w/. planning",
                    TablePrinter::fmt(measure_prefill(true), 1)});
    prefill.print();
    std::cout << "\n";
    TablePrinter decode({"Llama3-8B Decode", "MiB"});
    decode.addRow({"Relax w/o planning",
                   TablePrinter::fmt(measure_decode(false), 1)});
    decode.addRow({"Relax w/. planning",
                   TablePrinter::fmt(measure_decode(true), 1)});
    decode.print();
    return 0;
}
