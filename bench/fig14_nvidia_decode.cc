/**
 * @file
 * Figure 14: inference performance of Llama3-8B, Gemma1.1-7B and Qwen2-7B
 * on NVIDIA RTX 4090 across batch sizes, against HF Transformers (eager
 * and torch.compile), vLLM and llama.cpp.
 */
#include "decode_figure.h"

int
main()
{
    using namespace relax;
    using namespace relax::bench;
    runDecodeFigure(
        "Figure 14: NVIDIA RTX 4090 decode latency",
        device::rtx4090(),
        {frontend::LlamaConfig::llama3_8b(),
         frontend::LlamaConfig::gemma1_1_7b(),
         frontend::LlamaConfig::qwen2_7b()},
        {baselines::hfTransformers(), baselines::hfTorchCompile(),
         baselines::vllm(), baselines::llamaCpp()});
    return 0;
}
