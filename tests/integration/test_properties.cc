/**
 * @file
 * Randomized property suites over the whole compiler:
 *  - fusion/planning/library toggles never change program results;
 *  - deduced symbolic shapes always agree with runtime shapes;
 *  - the memory planner never lets two simultaneously-live tensors share
 *    a storage.
 */
#include <gtest/gtest.h>

#include <random>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "ir/utils.h"
#include "passes/passes.h"
#include "op/ops.h"
#include "shape/block_builder.h"
#include "vm/vm.h"

namespace relax {
namespace integration {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

std::shared_ptr<device::SimDevice>
hostDevice()
{
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(64) << 30;
    return std::make_shared<device::SimDevice>(spec);
}

/** Builds a random elementwise/matmul/reshape chain over (n, 8). */
IRModulePtr
randomChain(std::mt19937& rng, int length)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(8)}, DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(8), intImm(8)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Expr cursor = x;
    std::uniform_int_distribution<int> pick(0, 6);
    for (int i = 0; i < length; ++i) {
        switch (pick(rng)) {
          case 0: cursor = builder.emit(op::relu(cursor)); break;
          case 1: cursor = builder.emit(op::exp(cursor)); break;
          case 2: cursor = builder.emit(op::add(cursor, cursor)); break;
          case 3: cursor = builder.emit(op::matmul(cursor, w)); break;
          case 4: cursor = builder.emit(op::softmax(cursor)); break;
          case 5:
            cursor = builder.emit(op::multiplyScalar(cursor, 0.5));
            break;
          default: cursor = builder.emit(op::sigmoid(cursor)); break;
        }
    }
    Var out = builder.emitOutput(op::add(cursor, x));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    return module;
}

class PipelinePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PipelinePropertyTest, OptimizationsPreserveSemantics)
{
    std::mt19937 rng(GetParam());
    std::uniform_int_distribution<int> len(2, 7);
    std::uniform_real_distribution<double> val(-1.0, 1.0);
    for (int trial = 0; trial < 4; ++trial) {
        int length = len(rng);
        unsigned chain_seed = rng();
        NDArray x = NDArray::zeros({3, 8}, DataType::f32());
        NDArray w = NDArray::zeros({8, 8}, DataType::f32());
        for (int64_t i = 0; i < x.numel(); ++i) x.set(i, val(rng));
        for (int64_t i = 0; i < w.numel(); ++i) w.set(i, val(rng));

        auto run = [&](bool fusion, bool planning, bool lib) {
            std::mt19937 chain_rng(chain_seed);
            auto module = randomChain(chain_rng, length);
            frontend::CompileOptions options;
            options.device = lib ? device::rtx4090() : hostDevice()->spec();
            options.enableFusion = fusion;
            options.enableMemoryPlanning = planning;
            options.enableLibraryLowering = lib;
            auto exec = frontend::compile(module, options);
            vm::VirtualMachine machine(exec, hostDevice(), true);
            return std::get<NDArray>(machine.invoke("main", {x, w}));
        };
        NDArray base = run(false, false, false);
        NDArray optimized = run(true, true, false);
        NDArray with_lib = run(true, true, true);
        ASSERT_EQ(base.shape(), optimized.shape());
        for (int64_t i = 0; i < base.numel(); ++i) {
            EXPECT_NEAR(base.at(i), optimized.at(i), 1e-9)
                << "seed=" << chain_seed << " i=" << i;
            EXPECT_NEAR(base.at(i), with_lib.at(i), 1e-9)
                << "seed=" << chain_seed << " i=" << i;
        }
    }
}

TEST_P(PipelinePropertyTest, DeducedShapesMatchRuntimeShapes)
{
    std::mt19937 rng(GetParam() + 500);
    std::uniform_int_distribution<int> len(2, 6);
    std::uniform_int_distribution<int64_t> rows(1, 9);
    for (int trial = 0; trial < 4; ++trial) {
        auto module = randomChain(rng, len(rng));
        // Deduce the symbolic output shape and compare against execution.
        Function main_fn = module->getFunction("main");
        const auto* out_info = asTensor(
            static_cast<const SeqExprNode*>(main_fn->body.get())
                ->body->structInfo());
        ASSERT_NE(out_info, nullptr);
        ASSERT_TRUE(out_info->shape.has_value());

        int64_t n_rows = rows(rng);
        frontend::CompileOptions options;
        options.device = hostDevice()->spec();
        auto exec = frontend::compile(module, options);
        vm::VirtualMachine machine(exec, hostDevice(), true);
        NDArray x = NDArray::zeros({n_rows, 8}, DataType::f32());
        NDArray w = NDArray::zeros({8, 8}, DataType::f32());
        NDArray out = std::get<NDArray>(machine.invoke("main", {x, w}));

        // Evaluate the symbolic dims with n bound to the runtime value.
        const auto* n_var = static_cast<const ::relax::VarNode*>(
            (*asTensor(main_fn->params[0]->structInfo())->shape)[0].get());
        VarBinding binding{{n_var, n_rows}};
        ASSERT_EQ(out.shape().size(), out_info->shape->size());
        for (size_t d = 0; d < out.shape().size(); ++d) {
            EXPECT_EQ(out.shape()[d],
                      evalInt((*out_info->shape)[d], binding))
                << "dim " << d;
        }
    }
}

TEST_P(PipelinePropertyTest, PlannerNeverAliasesLiveTensors)
{
    // Structural check on planned modules: walk the lowered bindings and
    // verify that between a tensor's instantiation from a storage and its
    // last use, no other tensor instantiates from the same storage.
    std::mt19937 rng(GetParam() + 900);
    std::uniform_int_distribution<int> len(3, 8);
    for (int trial = 0; trial < 5; ++trial) {
        auto module = randomChain(rng, len(rng));
        module = passes::legalizeOpsPass().run(module);
        module = passes::lowerCallTIRPass().run(module);
        module = passes::staticMemoryPlanPass().run(module);
        Function main_fn = module->getFunction("main");
        const auto* seq =
            static_cast<const SeqExprNode*>(main_fn->body.get());
        const auto& bindings = seq->blocks[0]->bindings;

        // tensor var -> storage var, and last-use indices.
        std::unordered_map<const VarNode*, const VarNode*> storage_of;
        std::unordered_map<const VarNode*, size_t> last_use;
        for (size_t i = 0; i < bindings.size(); ++i) {
            std::unordered_set<const VarNode*> used;
            collectVarUses(bindings[i].value, &used);
            for (const auto* v : used) last_use[v] = i;
        }
        std::unordered_map<const VarNode*, size_t> live_until; // by storage
        for (size_t i = 0; i < bindings.size(); ++i) {
            if (!isOpCall(bindings[i].value, "relax.memory.alloc_tensor")) {
                continue;
            }
            const auto* call =
                static_cast<const CallNode*>(bindings[i].value.get());
            const auto* storage =
                static_cast<const VarNode*>(call->args[0].get());
            auto it = live_until.find(storage);
            if (it != live_until.end()) {
                EXPECT_GE(i, it->second)
                    << "storage " << storage->name
                    << " reused while its previous tensor is live";
            }
            size_t death = last_use.count(bindings[i].var.get())
                               ? last_use[bindings[i].var.get()]
                               : i;
            live_until[storage] = death;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(IntegrationTest, WhisperShapedModuleCompilesEverywhere)
{
    // The Fig. 19 encoder-decoder configuration compiles for every device
    // in the catalog (the §5.3 universal-deployment claim, in miniature).
    frontend::LlamaConfig whisper;
    whisper.name = "whisper-mini";
    whisper.hiddenSize = 64;
    whisper.numLayers = 2;
    whisper.numHeads = 4;
    whisper.headDim = 16;
    whisper.ffnSize = 128;
    whisper.vocabSize = 128;
    whisper.maxContext = 64;
    for (const char* name : {"rtx4090", "m2ultra", "s24", "webgpu_m3max"}) {
        frontend::CompileOptions options;
        options.device = device::deviceByName(name);
        options.bounds = {{"b", 2}, {"n", 64}, {"m", 64}};
        auto exec =
            frontend::compile(frontend::buildLlama(whisper), options);
        EXPECT_TRUE(exec->functions.count("prefill")) << name;
        EXPECT_TRUE(exec->functions.count("decode")) << name;
    }
}

} // namespace
} // namespace integration
} // namespace relax
