/**
 * @file
 * Tests for Algorithm 1: compute-pattern classification of tensor
 * programs (the "analysis feedback" of §4.2 and Fig. 9).
 */
#include <gtest/gtest.h>

#include "tir/analysis.h"
#include "tir/builder.h"

namespace relax {
namespace tir {
namespace {

TEST(PatternAnalysisTest, ElementWiseAdd)
{
    // C[i,j] = A[i,j] + B[i,j]
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n, intImm(4)});
    Buffer b = makeBuffer("B", DataType::f32(), {n, intImm(4)});
    Buffer c = makeBuffer("C", DataType::f32(), {n, intImm(4)});
    Var i = var("i"), j = var("j");
    Stmt body = nestLoops(
        {i, j}, {n, intImm(4)},
        makeStore(c, {i, j},
                  add(bufferLoad(a, {i, j}), bufferLoad(b, {i, j}))));
    PrimFunc func = makePrimFunc("add", {a, b, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kElementWise);
}

TEST(PatternAnalysisTest, BroadcastBecomesElementWiseWithEwRead)
{
    // Algorithm 1 line 19-20: C[i,j] = A[i,j] + B[j] is ElementWise.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n, intImm(4)});
    Buffer b = makeBuffer("B", DataType::f32(), {intImm(4)});
    Buffer c = makeBuffer("C", DataType::f32(), {n, intImm(4)});
    Var i = var("i"), j = var("j");
    Stmt body = nestLoops(
        {i, j}, {n, intImm(4)},
        makeStore(c, {i, j},
                  add(bufferLoad(a, {i, j}), bufferLoad(b, {j}))));
    PrimFunc func = makePrimFunc("add_bias", {a, b, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kElementWise);
}

TEST(PatternAnalysisTest, PureBroadcast)
{
    // C[i,j] = B[j]: broadcast along i with no elementwise read.
    Var n = var("n");
    Buffer b = makeBuffer("B", DataType::f32(), {intImm(4)});
    Buffer c = makeBuffer("C", DataType::f32(), {n, intImm(4)});
    Var i = var("i"), j = var("j");
    Stmt body = nestLoops({i, j}, {n, intImm(4)},
                          makeStore(c, {i, j}, bufferLoad(b, {j})));
    PrimFunc func = makePrimFunc("bcast", {b, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kBroadcast);
}

TEST(PatternAnalysisTest, TransposeIsInjective)
{
    // C[i,j] = A[j,i] (the paper's injective example).
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {intImm(4), n});
    Buffer c = makeBuffer("C", DataType::f32(), {n, intImm(4)});
    Var i = var("i"), j = var("j");
    Stmt body = nestLoops({i, j}, {n, intImm(4)},
                          makeStore(c, {i, j}, bufferLoad(a, {j, i})));
    PrimFunc func = makePrimFunc("transpose", {a, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kInjective);
}

TEST(PatternAnalysisTest, QuantDecodeIsInjective)
{
    // Fig. 9: W[k,j] = ((data[k, j//8] // 16^(j%8)) % 16 - 7) * scale[k, j//32]
    // reads are functions of the write vars only -> Injective.
    Buffer data = makeBuffer("Wdata", DataType::u32(), {intImm(128), intImm(32)});
    Buffer scale = makeBuffer("Wscale", DataType::f16(), {intImm(128), intImm(8)});
    Buffer w = makeBuffer("W", DataType::f16(), {intImm(128), intImm(256)});
    Var k = var("k"), j = var("j");
    PrimExpr word = bufferLoad(data, {k, floordiv(j, intImm(8))});
    PrimExpr nibble =
        sub(floormod(floordiv(cast(word, DataType::i64()),
                              floordiv(j, intImm(8))), // placeholder shift
                     intImm(16)),
            intImm(7));
    PrimExpr value = mul(cast(nibble, DataType::f16()),
                         bufferLoad(scale, {k, floordiv(j, intImm(32))}));
    Stmt body = nestLoops({k, j}, {intImm(128), intImm(256)},
                          makeStore(w, {k, j}, value));
    PrimFunc func = makePrimFunc("decode_q4", {data, scale, w}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kInjective);
}

TEST(PatternAnalysisTest, MatmulIsOutputEwiseFusible)
{
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f32(), {n, intImm(128)});
    Buffer w = makeBuffer("W", DataType::f32(), {intImm(128), intImm(256)});
    Buffer y = makeBuffer("Y", DataType::f32(), {n, intImm(256)});
    Var i = var("i"), j = var("j"), r = var("r");
    Stmt init = makeIf(eq(r, intImm(0)), makeStore(y, {i, j}, floatImm(0.0)));
    Stmt update = makeStore(
        y, {i, j},
        add(bufferLoad(y, {i, j}),
            mul(bufferLoad(x, {i, r}), bufferLoad(w, {r, j}))));
    Stmt body = nestLoops({i, j, r}, {n, intImm(256), intImm(128)},
                          makeSeq({init, update}));
    PrimFunc func = makePrimFunc("mm", {x, w, y}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kOutputEwiseFusible);
}

TEST(PatternAnalysisTest, SumIsReduction)
{
    // C[i] = C[i] + A[i,k]: reduction without multiply.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n, intImm(8)});
    Buffer c = makeBuffer("C", DataType::f32(), {n});
    Var i = var("i"), k = var("k");
    Stmt init = makeIf(eq(k, intImm(0)), makeStore(c, {i}, floatImm(0.0)));
    Stmt update =
        makeStore(c, {i}, add(bufferLoad(c, {i}), bufferLoad(a, {i, k})));
    Stmt body = nestLoops({i, k}, {n, intImm(8)}, makeSeq({init, update}));
    PrimFunc func = makePrimFunc("sum", {a, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kReduction);
}

TEST(PatternAnalysisTest, MaxReduceIsReduction)
{
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n, intImm(8)});
    Buffer c = makeBuffer("C", DataType::f32(), {n});
    Var i = var("i"), k = var("k");
    Stmt init =
        makeIf(eq(k, intImm(0)), makeStore(c, {i}, floatImm(-1e30)));
    Stmt update = makeStore(
        c, {i}, maxExpr(bufferLoad(c, {i}), bufferLoad(a, {i, k})));
    Stmt body = nestLoops({i, k}, {n, intImm(8)}, makeSeq({init, update}));
    PrimFunc func = makePrimFunc("max_reduce", {a, c}, body);
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kReduction);
}

TEST(PatternAnalysisTest, MultiOutputIsOpaque)
{
    // Writing two different buffers defeats single-output classification.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n});
    Buffer b = makeBuffer("B", DataType::f32(), {n});
    Buffer c = makeBuffer("C", DataType::f32(), {n});
    Var i = var("i");
    Stmt s1 = makeFor(i, n, makeStore(b, {i}, bufferLoad(a, {i})));
    Var j = var("j");
    Stmt s2 = makeFor(j, n, makeStore(c, {j}, bufferLoad(a, {j})));
    PrimFunc func = makePrimFunc("two_out", {a, b, c}, makeSeq({s1, s2}));
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kOpaque);
}

TEST(PatternAnalysisTest, DifferentWriteIndicesIsOpaque)
{
    // Line 4 of Algorithm 1.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n});
    Buffer b = makeBuffer("B", DataType::f32(), {n});
    Var i = var("i");
    Stmt s1 = makeFor(i, n, makeStore(b, {i}, bufferLoad(a, {i})));
    Stmt s2 = makeStore(b, {intImm(0)}, floatImm(0.0));
    PrimFunc func = makePrimFunc("mixed", {a, b}, makeSeq({s1, s2}));
    EXPECT_EQ(analyzePatternKind(func), PatternKind::kOpaque);
}

TEST(PatternAnalysisTest, PatternNamesRoundTrip)
{
    for (PatternKind kind :
         {PatternKind::kElementWise, PatternKind::kBroadcast,
          PatternKind::kInjective, PatternKind::kReduction,
          PatternKind::kOutputEwiseFusible, PatternKind::kOpaque}) {
        EXPECT_EQ(patternKindFromName(patternKindName(kind)), kind);
    }
    EXPECT_THROW(patternKindFromName("Nonsense"), IRError);
}

TEST(WorkspaceAnalysisTest, DetectsGlobalWorkspace)
{
    // Fig. 11: split-K matmul with a global workspace buffer.
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f32(), {n, intImm(16)});
    Buffer y = makeBuffer("Y", DataType::f32(), {n, intImm(16)});
    Buffer ws = makeBuffer("workspace", DataType::f32(), {intImm(1024)});
    Var i = var("i");
    Stmt inner = makeFor(i, n, makeStore(ws, {i}, floatImm(0.0)));
    Stmt body = makeAllocBuffer(ws, "global", inner);
    PrimFunc func = makePrimFunc("mm_split_k", {x, y}, body);
    auto workspace = findGlobalWorkspace(func);
    ASSERT_TRUE(workspace.has_value());
    EXPECT_EQ(workspace->buffer.get(), ws.get());

    // Local scratch does not count.
    Stmt local_body = makeAllocBuffer(ws, "local", inner);
    PrimFunc local_fn = makePrimFunc("mm_local", {x, y}, local_body);
    EXPECT_FALSE(findGlobalWorkspace(local_fn).has_value());
}

TEST(CostAnalysisTest, MatmulRooflineCost)
{
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f16(), {n, intImm(128)});
    Buffer w = makeBuffer("W", DataType::f16(), {intImm(128), intImm(256)});
    Buffer y = makeBuffer("Y", DataType::f16(), {n, intImm(256)});
    Var i = var("i"), j = var("j"), r = var("r");
    Stmt update = makeStore(
        y, {i, j},
        add(bufferLoad(y, {i, j}),
            mul(bufferLoad(x, {i, r}), bufferLoad(w, {r, j}))));
    Stmt body = nestLoops({i, j, r}, {n, intImm(256), intImm(128)}, update);
    PrimFunc func = makePrimFunc("mm", {x, w, y}, body);

    TensorProgramCost cost = analyzeCost(func);
    VarBinding binding{{n.get(), 4}};
    // 2 flops (mul + add) per iteration over n*256*128 iterations.
    EXPECT_EQ(evalInt(cost.flops, binding), 2 * 4 * 256 * 128);
    // Roofline bytes: |X| + |W| + |Y| in f16.
    EXPECT_EQ(evalInt(cost.bytes, binding),
              2 * (4 * 128 + 128 * 256 + 4 * 256));
}

TEST(CostAnalysisTest, GlobalWorkspaceCountsTwice)
{
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f32(), {n});
    Buffer y = makeBuffer("Y", DataType::f32(), {n});
    Buffer ws = makeBuffer("workspace", DataType::f32(), {n});
    Var i = var("i"), j = var("j");
    Stmt fill = makeFor(i, n, makeStore(ws, {i}, bufferLoad(x, {i})));
    Stmt drain = makeFor(j, n, makeStore(y, {j}, bufferLoad(ws, {j})));
    Stmt body = makeAllocBuffer(ws, "global", makeSeq({fill, drain}));
    PrimFunc func = makePrimFunc("roundtrip", {x, y}, body);

    TensorProgramCost cost = analyzeCost(func);
    VarBinding binding{{n.get(), 10}};
    // X (40 B) + Y (40 B) + workspace counted twice (80 B).
    EXPECT_EQ(evalInt(cost.bytes, binding), 40 + 40 + 80);
}

TEST(CostAnalysisTest, LocalScratchExcludedFromBytes)
{
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f32(), {n});
    Buffer y = makeBuffer("Y", DataType::f32(), {n});
    Buffer tmp = makeBuffer("tmp", DataType::f32(), {n});
    Var i = var("i"), j = var("j");
    Stmt fill = makeFor(i, n, makeStore(tmp, {i}, bufferLoad(x, {i})));
    Stmt drain = makeFor(j, n, makeStore(y, {j}, bufferLoad(tmp, {j})));
    Stmt body = makeAllocBuffer(tmp, "local", makeSeq({fill, drain}));
    PrimFunc func = makePrimFunc("through_local", {x, y}, body);

    TensorProgramCost cost = analyzeCost(func);
    VarBinding binding{{n.get(), 10}};
    EXPECT_EQ(evalInt(cost.bytes, binding), 40 + 40);
}

} // namespace
} // namespace tir
} // namespace relax
