/**
 * @file
 * Tests for TensorIR-lite: construction, printing, substitution, shape
 * unification, and the reference interpreter.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "arith/structural.h"
#include "tir/builder.h"
#include "tir/interpreter.h"
#include "tir/stmt.h"
#include "tir/transform.h"

namespace relax {
namespace tir {
namespace {

/** Builds `Y[i,j] = 0; Y[i,j] += X[i,k] * W[k,j]` over grid(n, m, k). */
PrimFunc
makeMatmul(PrimExpr n, PrimExpr k, PrimExpr m)
{
    Buffer x = makeBuffer("X", DataType::f32(), {n, k});
    Buffer w = makeBuffer("W", DataType::f32(), {k, m});
    Buffer y = makeBuffer("Y", DataType::f32(), {n, m});
    Var i = var("i"), j = var("j"), r = var("r");
    Stmt init = makeIf(eq(r, intImm(0)),
                       makeStore(y, {i, j}, floatImm(0.0)));
    Stmt update = makeStore(
        y, {i, j},
        add(bufferLoad(y, {i, j}),
            mul(bufferLoad(x, {i, r}), bufferLoad(w, {r, j}))));
    Stmt body = nestLoops({i, j, r}, {n, m, k},
                          makeSeq({init, update}));
    return makePrimFunc("mm", {x, w, y}, body);
}

/** Builds `Y[i] = max(X[i], 0)` over grid(n). */
PrimFunc
makeRelu(PrimExpr n)
{
    Buffer x = makeBuffer("X", DataType::f32(), {n});
    Buffer y = makeBuffer("Y", DataType::f32(), {n});
    Var i = var("i");
    Stmt body = makeFor(
        i, n, makeStore(y, {i}, maxExpr(bufferLoad(x, {i}), floatImm(0.0))));
    return makePrimFunc("relu", {x, y}, body);
}

TEST(TirTest, PrintsPaperLikeForm)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(128), intImm(256));
    std::string text = toString(mm);
    EXPECT_NE(text.find("@tensorir_function"), std::string::npos);
    EXPECT_NE(text.find("def mm("), std::string::npos);
    EXPECT_NE(text.find("X: Buffer((n, 128), \"f32\")"), std::string::npos);
    EXPECT_NE(text.find("for i in range(n):"), std::string::npos);
    EXPECT_NE(text.find("Y[i, j] = (Y[i, j] + (X[i, r] * W[r, j]))"),
              std::string::npos);
}

TEST(TirTest, CollectAccessesFindsReadsAndWrites)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(4), intImm(8));
    AccessSet accesses = collectAccesses(mm->body);
    // Writes: init store + accumulate store. Reads: Y, X, W in accumulate.
    EXPECT_EQ(accesses.writes.size(), 2u);
    EXPECT_EQ(accesses.reads.size(), 3u);
}

TEST(TirTest, CollectLoopVarsInOrder)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(4), intImm(8));
    auto loop_vars = collectLoopVars(mm->body);
    ASSERT_EQ(loop_vars.size(), 3u);
    EXPECT_EQ(loop_vars[0]->name, "i");
    EXPECT_EQ(loop_vars[1]->name, "j");
    EXPECT_EQ(loop_vars[2]->name, "r");
}

TEST(TirTest, CollectFreeVarsFindsShapeVars)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(4), intImm(8));
    auto free_vars = collectFreeVars(mm);
    ASSERT_EQ(free_vars.size(), 1u);
    EXPECT_TRUE(free_vars.count(n.get()));
}

TEST(TirTest, SubstituteRewritesBuffersAndVars)
{
    Var n = var("n");
    Buffer x = makeBuffer("X", DataType::f32(), {n});
    Buffer y = makeBuffer("Y", DataType::f32(), {n});
    Buffer z = makeBuffer("Z", DataType::f32(), {n});
    Var i = var("i");
    Stmt body =
        makeFor(i, n, makeStore(y, {i}, bufferLoad(x, {i})));

    BufferMap bmap{{y.get(), z}};
    VarMap vmap{{n.get(), intImm(16)}};
    Stmt rewritten = substituteStmt(body, vmap, bmap);
    AccessSet accesses = collectAccesses(rewritten);
    ASSERT_EQ(accesses.writes.size(), 1u);
    EXPECT_EQ(accesses.writes[0].buffer.get(), z.get());
    const auto* loop = static_cast<const ForNode*>(rewritten.get());
    EXPECT_TRUE(isConstInt(loop->extent, 16));
}

TEST(TirTest, UnifyShapesBindsVariables)
{
    Var n = var("n");
    Var m = var("m");
    Var outer = var("s");
    VarMap binding;
    // Pattern (n, m) against concrete (s, 4): binds n := s, m := 4.
    EXPECT_TRUE(unifyShapes({n, m}, {outer, intImm(4)}, &binding));
    EXPECT_TRUE(structuralEqual(binding[n.get()], outer));
    EXPECT_TRUE(isConstInt(binding[m.get()], 4));
}

TEST(TirTest, UnifyShapesChecksCompositeDims)
{
    Var n = var("n");
    Var outer = var("s");
    VarMap binding;
    // Pattern (n, n*4): second dim must prove equal once n is bound.
    EXPECT_TRUE(unifyShapes({n, mul(n, intImm(4))},
                            {outer, mul(intImm(4), outer)}, &binding));
    VarMap bad;
    EXPECT_FALSE(unifyShapes({n, mul(n, intImm(4))},
                             {outer, mul(intImm(5), outer)}, &bad));
}

TEST(TirTest, UnifyShapesRejectsInconsistentRebinding)
{
    Var n = var("n");
    VarMap binding;
    EXPECT_FALSE(unifyShapes({n, n}, {intImm(3), intImm(4)}, &binding));
    VarMap good;
    EXPECT_TRUE(unifyShapes({n, n}, {intImm(3), intImm(3)}, &good));
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

TEST(InterpreterTest, RunsRelu)
{
    Var n = var("n");
    PrimFunc relu = makeRelu(n);
    NDArray x = NDArray::fromVector({4}, DataType::f32(),
                                    {-1.0, 2.0, -3.0, 4.0});
    NDArray y = NDArray::zeros({4}, DataType::f32());
    run(relu, {x, y});
    EXPECT_EQ(y.data(), (std::vector<double>{0.0, 2.0, 0.0, 4.0}));
}

TEST(InterpreterTest, RunsMatmulWithDynamicDim)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(2), intImm(2));
    // X = [[1,2],[3,4],[5,6]] (n=3), W = [[1,0],[0,1]] -> Y == X.
    NDArray x = NDArray::fromVector({3, 2}, DataType::f32(),
                                    {1, 2, 3, 4, 5, 6});
    NDArray w = NDArray::fromVector({2, 2}, DataType::f32(), {1, 0, 0, 1});
    NDArray y = NDArray::zeros({3, 2}, DataType::f32());
    run(mm, {x, w, y});
    EXPECT_EQ(y.data(), x.data());
}

TEST(InterpreterTest, SameFuncServesMultipleDynamicShapes)
{
    // The paper compiles once for arbitrary batch sizes; the interpreter
    // mirrors that by re-binding n per call.
    Var n = var("n");
    PrimFunc relu = makeRelu(n);
    for (int64_t size : {1, 5, 17}) {
        NDArray x = NDArray::zeros({size}, DataType::f32());
        for (int64_t i = 0; i < size; ++i) x.set(i, -(double)i);
        NDArray y = NDArray::zeros({size}, DataType::f32());
        run(relu, {x, y});
        for (int64_t i = 0; i < size; ++i) EXPECT_EQ(y.at(i), 0.0);
    }
}

TEST(InterpreterTest, ShapeCheckRejectsMismatch)
{
    Var n = var("n");
    PrimFunc mm = makeMatmul(n, intImm(2), intImm(2));
    NDArray x = NDArray::zeros({3, 2}, DataType::f32());
    NDArray w = NDArray::zeros({5, 2}, DataType::f32()); // K mismatch
    NDArray y = NDArray::zeros({3, 2}, DataType::f32());
    EXPECT_THROW(run(mm, {x, w, y}), ShapeError);
}

TEST(InterpreterTest, ShapeCheckRejectsInconsistentSymbolBinding)
{
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n});
    Buffer b = makeBuffer("B", DataType::f32(), {n});
    Var i = var("i");
    PrimFunc copy = makePrimFunc(
        "copy", {a, b}, makeFor(i, n, makeStore(b, {i}, bufferLoad(a, {i}))));
    NDArray x = NDArray::zeros({3}, DataType::f32());
    NDArray y = NDArray::zeros({4}, DataType::f32());
    EXPECT_THROW(run(copy, {x, y}), ShapeError);
}

TEST(InterpreterTest, CompositeShapeDimsVerified)
{
    // Output declared (n*2,): passing a wrong-sized output fails the
    // lightweight runtime check of §4.1.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n, intImm(2)});
    Buffer b = makeBuffer("B", DataType::f32(), {mul(n, intImm(2))});
    Var i = var("i"), j = var("j");
    Stmt body = nestLoops(
        {i, j}, {n, intImm(2)},
        makeStore(b, {add(mul(i, intImm(2)), j)}, bufferLoad(a, {i, j})));
    PrimFunc flatten_fn = makePrimFunc("flatten", {a, b}, body);

    NDArray x = NDArray::fromVector({3, 2}, DataType::f32(),
                                    {1, 2, 3, 4, 5, 6});
    NDArray good = NDArray::zeros({6}, DataType::f32());
    run(flatten_fn, {x, good});
    EXPECT_EQ(good.data(), x.data());

    NDArray bad = NDArray::zeros({7}, DataType::f32());
    EXPECT_THROW(run(flatten_fn, {x, bad}), ShapeError);
}

TEST(InterpreterTest, SymbolicParamsArePassedExplicitly)
{
    // Fig. 8: a fused function takes an extra symbolic argument s = n.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {mul(n, intImm(2))});
    Buffer b = makeBuffer("B", DataType::f32(), {mul(n, intImm(2))});
    Var i = var("i");
    Stmt body = makeFor(i, mul(n, intImm(2)),
                        makeStore(b, {i}, add(bufferLoad(a, {i}),
                                              floatImm(1.0))));
    PrimFunc fused = makePrimFunc("fused_addone", {a, b}, body, {n});

    NDArray x = NDArray::fromVector({6}, DataType::f32(),
                                    {0, 1, 2, 3, 4, 5});
    NDArray y = NDArray::zeros({6}, DataType::f32());
    run(fused, {x, y}, {3});
    EXPECT_EQ(y.at(5), 6.0);
    // Wrong symbolic value breaks the shape verification.
    EXPECT_THROW(run(fused, {x, y}, {4}), ShapeError);
}

TEST(InterpreterTest, AllocBufferProvidesScratch)
{
    // B = exp(A) via an intermediate local buffer.
    Var n = var("n");
    Buffer a = makeBuffer("A", DataType::f32(), {n});
    Buffer tmp = makeBuffer("T", DataType::f32(), {n});
    Buffer b = makeBuffer("B", DataType::f32(), {n});
    Var i = var("i"), j = var("j");
    Stmt fill = makeFor(
        i, n, makeStore(tmp, {i}, callIntrin("exp", {bufferLoad(a, {i})},
                                             DataType::f32())));
    Stmt copy = makeFor(j, n, makeStore(b, {j}, bufferLoad(tmp, {j})));
    Stmt body = makeAllocBuffer(tmp, "local", makeSeq({fill, copy}));
    PrimFunc func = makePrimFunc("exp_via_scratch", {a, b}, body);

    NDArray x = NDArray::fromVector({2}, DataType::f32(), {0.0, 1.0});
    NDArray y = NDArray::zeros({2}, DataType::f32());
    run(func, {x, y});
    EXPECT_DOUBLE_EQ(y.at(0), 1.0);
    EXPECT_NEAR(y.at(1), std::exp(1.0), 1e-12);
}

TEST(InterpreterTest, IntegerBitManipulationViaDivMod)
{
    // The q4 decode path: w = (data // 16^k) % 16 - 7, validating that
    // unsigned unpacking is exactly representable.
    Buffer data = makeBuffer("D", DataType::u32(), {intImm(1)});
    Buffer out = makeBuffer("O", DataType::f32(), {intImm(8)});
    PrimExpr word = bufferLoad(data, {intImm(0)});
    std::vector<Stmt> stores;
    int64_t divisor = 1;
    for (int64_t k = 0; k < 8; ++k) {
        stores.push_back(makeStore(
            out, {intImm(k)},
            sub(floormod(floordiv(cast(word, DataType::i64()),
                                  intImm(divisor)),
                         intImm(16)),
                intImm(7))));
        divisor *= 16;
    }
    PrimFunc decode = makePrimFunc("decode1", {data, out},
                                   makeSeq(std::move(stores)));
    // Pack nibbles 0..7 into one u32 word.
    uint64_t packed = 0;
    for (uint64_t k = 0; k < 8; ++k) packed |= (k & 0xF) << (4 * k);
    NDArray d = NDArray::fromVector({1}, DataType::u32(), {(double)packed});
    NDArray o = NDArray::zeros({8}, DataType::f32());
    run(decode, {d, o});
    for (int64_t k = 0; k < 8; ++k) {
        EXPECT_DOUBLE_EQ(o.at(k), (double)k - 7.0) << "nibble " << k;
    }
}

TEST(NDArrayTest, MetadataOnlyTracksShapeNotData)
{
    NDArray meta = NDArray::metaOnly({1024, 4096}, DataType::f16());
    EXPECT_FALSE(meta.hasData());
    EXPECT_EQ(meta.numel(), 1024 * 4096);
    EXPECT_EQ(meta.sizeBytes(), 1024 * 4096 * 2);
    EXPECT_THROW(meta.at(0), InternalError);
}

TEST(NDArrayTest, FlattenIsRowMajorAndBoundsChecked)
{
    NDArray array = NDArray::zeros({2, 3}, DataType::f32());
    EXPECT_EQ(array.flatten({1, 2}), 5);
    EXPECT_THROW(array.flatten({2, 0}), InternalError);
    EXPECT_THROW(array.flatten({0}), InternalError);
}

} // namespace
} // namespace tir
} // namespace relax
