/**
 * @file
 * Tests for forward symbolic shape deduction (§4.1), reproducing the
 * paper's Figure 3 (first-class symbolic shapes vs. unknown dims, with
 * match_cast) and Figure 7 (interprocedural deduction through subgraph
 * function signatures).
 */
#include <gtest/gtest.h>

#include "arith/structural.h"
#include "op/ops.h"
#include "shape/block_builder.h"

namespace relax {
namespace shape {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;

/** Checks a tensor annotation against an expected rendering. */
void
expectSInfo(const StructInfo& sinfo, const std::string& expected)
{
    EXPECT_EQ(ir::toString(sinfo), expected);
}

TEST(DeductionTest, Figure3SymbolicShapeFlow)
{
    // def symbolic_shape_fn(x: Tensor(("n", 2, 2), "f32")):
    //   lv0 = reshape(x, shape(n, 4))   -> Tensor((n, 4))
    //   lv1 = flatten(lv0)              -> Tensor((n * 4,))
    //   lv2 = unique(lv1)               -> Tensor(ndim=1) (data-dependent)
    //   lv3 = match_cast(lv2, (m,))     -> Tensor((m,))
    //   lv4 = exp(lv3)                  -> Tensor((m,))
    auto module = IRModule::create();
    BlockBuilder builder(module);
    SymVar n = var("n");
    SymVar m = var("m");
    Var x = makeVar("x", tensorSInfo({n, intImm(2), intImm(2)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::reshape(x, makeShapeExpr({n, intImm(4)})));
    expectSInfo(lv0->structInfo(), "Tensor((n, 4), \"f32\")");

    Var lv1 = builder.emit(op::flatten(lv0));
    expectSInfo(lv1->structInfo(), "Tensor((4 * n), \"f32\")");

    Var lv2 = builder.emit(op::unique(lv1));
    expectSInfo(lv2->structInfo(), "Tensor(ndim=1, \"f32\")");

    Var lv3 = builder.emitMatchCast(lv2, tensorSInfo({m}, DataType::f32()));
    expectSInfo(lv3->structInfo(), "Tensor((m), \"f32\")");

    Var lv4 = builder.emit(op::exp(lv3));
    expectSInfo(lv4->structInfo(), "Tensor((m), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, ReshapeValidatesElementCount)
{
    auto module = IRModule::create();
    BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(2), intImm(2)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    // (n,2,2) -> (n,5) changes the element count: rejected statically.
    EXPECT_THROW(builder.emit(op::reshape(x, makeShapeExpr({n, intImm(5)}))),
                 ShapeError);
    // Symbolically equal counts are accepted: (n,2,2) -> (2n, 2).
    Var ok = builder.emit(op::reshape(
        x, makeShapeExpr({mul(intImm(2), n), intImm(2)})));
    expectSInfo(ok->structInfo(), "Tensor((2 * n, 2), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, Figure7SubgraphFunctionCalls)
{
    // subfn(s: Shape([n, m])) -> Tensor((n * m,), "f32")
    auto module = IRModule::create();
    SymVar n = var("n");
    SymVar m = var("m");
    {
        Var s = makeVar("s", shapeSInfo({n, m}));
        auto block = std::make_shared<BindingBlockNode>(false);
        // Body irrelevant for signature-based deduction; return param-typed
        // dummy via match_cast in a real build. Use an opaque body.
        Var out = makeVar("out", tensorSInfo({mul(n, m)}, DataType::f32()));
        block->bindings.push_back(
            {out, makeCall(getOp("relax.builtin_dummy"), {s}), false,
             nullptr});
        module->addFunction(
            "subfn", makeFunction({s}, makeSeqExpr({block}, out),
                                  tensorSInfo({mul(n, m)}, DataType::f32())));
    }
    GlobalVar subfn = module->getGlobalVar("subfn");
    // The printed signature matches Fig. 7.
    expectSInfo(module->getFunction("subfn")->structInfo(),
                "Callable([Shape((n, m))], Tensor((n * m), \"f32\"))");

    BlockBuilder builder(module);
    SymVar outer_n = var("n"); // caller-side n, a distinct symbol
    builder.beginBindingBlock();

    // lv0 = subfn(shape(n, 4)) -> Tensor((n * 4,))
    Var lv0 = builder.emit(makeCall(subfn,
                                    {makeShapeExpr({outer_n, intImm(4)})}));
    expectSInfo(lv0->structInfo(), "Tensor((4 * n), \"f32\")");

    // lv1 = subfn(shape(3, 4)) -> Tensor((12,))
    Var lv1 = builder.emit(
        makeCall(subfn, {makeShapeExpr({intImm(3), intImm(4)})}));
    expectSInfo(lv1->structInfo(), "Tensor((12), \"f32\")");

    // lv2 = subfn(shape(n + 1, 4)) -> Tensor(((n + 1) * 4,)) == 4n + 4
    Var lv2 = builder.emit(makeCall(
        subfn, {makeShapeExpr({relax::add(outer_n, intImm(1)),
                               intImm(4)})}));
    expectSInfo(lv2->structInfo(), "Tensor((4 * n + 4), \"f32\")");

    // lv3 = subfn(y: Shape(ndim=2)) -> coarse Tensor(ndim=1).
    Var y = makeVar("y", shapeSInfoNDim(2));
    Var lv3 = builder.emit(makeCall(subfn, {Expr(y)}));
    expectSInfo(lv3->structInfo(), "Tensor(ndim=1, \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, FirstClassFunctionValueDeduction)
{
    // f0: Callable([Tensor((n, 4))], Tensor((n * 4,))) used as a value.
    auto module = IRModule::create();
    SymVar n = var("n");
    StructInfo signature =
        callableSInfo({tensorSInfo({n, intImm(4)}, DataType::f32())},
                      tensorSInfo({mul(n, intImm(4))}, DataType::f32()));
    Var f0 = makeVar("f0", signature);
    SymVar s = var("s");
    Var arg = makeVar("x", tensorSInfo({s, intImm(4)}, DataType::f32()));

    BlockBuilder builder(module);
    builder.beginBindingBlock();
    Var lv = builder.emit(makeCall(Expr(f0), {Expr(arg)}));
    expectSInfo(lv->structInfo(), "Tensor((4 * s), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, MismatchedCallRejected)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    StructInfo signature =
        callableSInfo({tensorSInfo({n, intImm(4)}, DataType::f32())},
                      tensorSInfo({n}, DataType::f32()));
    Var f0 = makeVar("f0", signature);
    // Rank mismatch: Tensor((s,)) into Tensor((n, 4)).
    SymVar s = var("s");
    Var bad = makeVar("x", tensorSInfo({s}, DataType::f32()));
    BlockBuilder builder(module);
    builder.beginBindingBlock();
    EXPECT_THROW(builder.emit(makeCall(Expr(f0), {Expr(bad)})), ShapeError);
    // dtype mismatch is also rejected.
    Var bad2 = makeVar("x2", tensorSInfo({s, intImm(4)}, DataType::f16()));
    EXPECT_THROW(builder.emit(makeCall(Expr(f0), {Expr(bad2)})), ShapeError);
    builder.endBlock();
}

TEST(DeductionTest, SymbolicExprParamAnnotations)
{
    // Fig. 8: fused_add_relu(x: Tensor(("n * 2",)), y: ..., s: Shape([n]))
    // called with arguments of shape (2 * n,) and shape(n).
    auto module = IRModule::create();
    SymVar inner_n = var("n");
    StructInfo x_ann =
        tensorSInfo({mul(inner_n, intImm(2))}, DataType::f32());
    StructInfo s_ann = shapeSInfo({PrimExpr(inner_n)});
    StructInfo signature = callableSInfo({x_ann, x_ann, s_ann}, x_ann);
    Var fused = makeVar("fused_add_relu", signature);

    SymVar outer_n = var("n");
    Var lv0 = makeVar("lv0", tensorSInfo({mul(intImm(2), outer_n)},
                                         DataType::f32()));
    BlockBuilder builder(module);
    builder.beginBindingBlock();
    Var lv1 = builder.emit(makeCall(
        Expr(fused),
        {Expr(lv0), Expr(lv0), makeShapeExpr({PrimExpr(outer_n)})}));
    // The extra Shape parameter binds inner n := outer n, so the composite
    // "n * 2" parameter annotation unifies and the result is (2n,).
    expectSInfo(lv1->structInfo(), "Tensor((2 * n), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, TupleAndGetItemFlow)
{
    auto module = IRModule::create();
    BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({mul(n, intImm(4))}, DataType::f32()));
    builder.beginDataflowBlock();
    // split(x, 2) -> Tuple[Tensor((n*2,)), Tensor((n*2,))]
    Var lv3 = builder.emit(op::split(x, 2, 0));
    expectSInfo(lv3->structInfo(),
                "Tuple[Tensor((2 * n), \"f32\"), Tensor((2 * n), \"f32\")]");
    Var lv4 = builder.emit(makeTupleGetItem(lv3, 0));
    expectSInfo(lv4->structInfo(), "Tensor((2 * n), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, CallTIRAndLibraryUseExplicitAnnotation)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    // Minimal tensor program so well-formedness holds.
    {
        tir::Buffer a = tir::makeBuffer("A", DataType::f32(), {n});
        tir::Buffer b = tir::makeBuffer("B", DataType::f32(), {n});
        ::relax::Var i = var("i");
        module->addTIRFunc(tir::makePrimFunc(
            "exp_kernel", {a, b},
            tir::makeFor(i, n,
                         tir::makeStore(b, {i}, tir::bufferLoad(a, {i})))));
    }
    BlockBuilder builder(module);
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(callTIR(module->getGlobalVar("exp_kernel"), {x},
                                   tensorSInfo({n, intImm(4)},
                                               DataType::f32())));
    expectSInfo(lv0->structInfo(), "Tensor((n, 4), \"f32\")");
    Var lv1 = builder.emit(callDPSLibrary(
        "cutlass.rms_norm", {lv0},
        tensorSInfo({n, intImm(4)}, DataType::f32())));
    expectSInfo(lv1->structInfo(), "Tensor((n, 4), \"f32\")");
    builder.endBlock();
}

TEST(DeductionTest, RaggedDecodeFlowKeepsSymbolicDims)
{
    // The packed-varlen page-pool contract at the annotation level: a
    // persistent pool [p, h, c, d] plus a [b] length vector, a [b+1]
    // cumulative fresh-offset vector and a [b, w] block table flow
    // through the in-place pool append and ragged attention with every
    // symbolic dim preserved — no coarsening, the memory planner and
    // graph bucketing depend on these exact expressions.
    auto module = IRModule::create();
    BlockBuilder builder(module);
    SymVar b = var("b");
    SymVar n = var("n");
    SymVar p = var("p");
    SymVar c = var("c");
    SymVar w = var("w");
    Var q = makeVar("q",
                    tensorSInfo({intImm(1), intImm(2), n, intImm(4)},
                                DataType::f16()));
    Var fresh = makeVar("fresh",
                        tensorSInfo({intImm(1), intImm(2), n, intImm(4)},
                                    DataType::f16()));
    Var pool = makeVar("pool",
                       tensorSInfo({p, intImm(2), c, intImm(4)},
                                   DataType::f16()));
    Var lens = makeVar("lens", tensorSInfo({b}, DataType::i64()));
    Var cu = makeVar("cu", tensorSInfo({relax::add(b, intImm(1))},
                                       DataType::i64()));
    Var table = makeVar("table", tensorSInfo({b, w}, DataType::i64()));
    builder.beginDataflowBlock();
    ir::Call append = callDPSLibrary(
        "kv.append_ragged", {pool, fresh, lens, cu, table},
        tensorSInfo({p, intImm(2), c, intImm(4)}, DataType::f16()));
    append->attrs["inplace_arg"] = (int64_t)0;
    Var appended = builder.emit(append);
    expectSInfo(appended->structInfo(), "Tensor((p, 2, c, 4), \"f16\")");
    Var attn = builder.emit(
        op::attentionRagged(q, appended, appended, lens, cu, table, 0.5));
    expectSInfo(attn->structInfo(), "Tensor((1, 2, n, 4), \"f16\")");
    builder.endBlock();
}

TEST(DeductionTest, UnifySInfoResults)
{
    SymVar n = var("n");
    VarMap binding;
    // Exact: Tensor((n,4)) vs Tensor((s,4)).
    SymVar s = var("s");
    EXPECT_EQ(unifySInfo(tensorSInfo({n, intImm(4)}, DataType::f32()),
                         tensorSInfo({s, intImm(4)}, DataType::f32()),
                         &binding),
              UnifyResult::kExact);
    EXPECT_TRUE(structuralEqual(binding[n.get()], s));

    // Coarse: param symbolic, arg rank-only.
    VarMap binding2;
    EXPECT_EQ(unifySInfo(tensorSInfo({n}, DataType::f32()),
                         tensorSInfoNDim(1, DataType::f32()), &binding2),
              UnifyResult::kCoarse);

    // Mismatch: rank conflict.
    VarMap binding3;
    EXPECT_EQ(unifySInfo(tensorSInfo({n}, DataType::f32()),
                         tensorSInfo({s, intImm(2)}, DataType::f32()),
                         &binding3),
              UnifyResult::kMismatch);

    // Mismatch: constant conflict 3 vs 4.
    VarMap binding4;
    EXPECT_EQ(unifySInfo(tensorSInfo({intImm(3)}, DataType::f32()),
                         tensorSInfo({intImm(4)}, DataType::f32()),
                         &binding4),
              UnifyResult::kMismatch);
}

TEST(DeductionTest, EraseToCoarseDropsSymbolicDetail)
{
    SymVar n = var("n");
    StructInfo fine = tupleSInfo(
        {tensorSInfo({n, intImm(4)}, DataType::f32()), shapeSInfo({n})});
    StructInfo coarse = eraseToCoarse(fine);
    EXPECT_EQ(ir::toString(coarse),
              "Tuple[Tensor(ndim=2, \"f32\"), Shape(ndim=1)]");
}

} // namespace
} // namespace shape
} // namespace relax
