/**
 * @file
 * Tests for the Relax graph IR: StructInfo annotations (Table 1),
 * expressions, modules, printing and the well-formed checker.
 */
#include <gtest/gtest.h>

#include "arith/structural.h"
#include "ir/module.h"
#include "ir/utils.h"
#include "tir/builder.h"

namespace relax {
namespace ir {
namespace {

TEST(StructInfoTest, PrintsPaperNotation)
{
    SymVar n = var("n");
    EXPECT_EQ(toString(objectSInfo()), "Object");
    EXPECT_EQ(toString(shapeSInfo({n, intImm(4)})), "Shape((n, 4))");
    EXPECT_EQ(toString(shapeSInfoNDim(2)), "Shape(ndim=2)");
    EXPECT_EQ(toString(tensorSInfo({n, intImm(4)}, DataType::f32())),
              "Tensor((n, 4), \"f32\")");
    EXPECT_EQ(toString(tensorSInfoNDim(kUnknownNDim, DataType::f32())),
              "Tensor(ndim=None, \"f32\")");
    EXPECT_EQ(toString(tupleSInfo({tensorSInfo({n}, DataType::f32()),
                                   objectSInfo()})),
              "Tuple[Tensor((n), \"f32\"), Object]");
    EXPECT_EQ(
        toString(callableSInfo({tensorSInfo({n}, DataType::f32())},
                               tensorSInfo({mul(n, intImm(4))},
                                           DataType::f32()))),
        "Callable([Tensor((n), \"f32\")], Tensor((n * 4), \"f32\"))");
}

TEST(StructInfoTest, EqualityIsStructuralOverSymbolicDims)
{
    SymVar n = var("n");
    StructInfo a = tensorSInfo({n, intImm(4)}, DataType::f32());
    StructInfo b = tensorSInfo({n, intImm(4)}, DataType::f32());
    StructInfo c = tensorSInfo({n, intImm(8)}, DataType::f32());
    EXPECT_TRUE(sInfoEqual(a, b));
    EXPECT_FALSE(sInfoEqual(a, c));
    EXPECT_FALSE(sInfoEqual(a, tensorSInfo({n, intImm(4)},
                                           DataType::f16())));
    EXPECT_FALSE(sInfoEqual(a, tensorSInfoNDim(2, DataType::f32())));
}

TEST(StructInfoTest, CompatibilityAllowsCoarseToFine)
{
    SymVar n = var("n");
    StructInfo fine = tensorSInfo({n, intImm(4)}, DataType::f32());
    StructInfo coarse = tensorSInfoNDim(2, DataType::f32());
    // Coarse values may flow into specific slots (runtime checked, §4.1).
    EXPECT_TRUE(sInfoCompatible(fine, coarse));
    EXPECT_TRUE(sInfoCompatible(coarse, fine));
    EXPECT_FALSE(sInfoCompatible(fine,
                                 tensorSInfoNDim(3, DataType::f32())));
    EXPECT_FALSE(sInfoCompatible(fine,
                                 tensorSInfoNDim(2, DataType::f16())));
    EXPECT_TRUE(sInfoCompatible(objectSInfo(), fine));
}

TEST(StructInfoTest, SubstituteAndCollectSymVars)
{
    SymVar n = var("n");
    StructInfo sinfo = tensorSInfo({n, mul(n, intImm(2))}, DataType::f32());
    std::unordered_set<const ::relax::VarNode*> vars;
    collectSymVars(sinfo, &vars);
    EXPECT_EQ(vars.size(), 1u);

    VarMap vmap{{n.get(), intImm(3)}};
    StructInfo substituted = substituteSInfo(sinfo, vmap);
    const auto* tensor = asTensor(substituted);
    ASSERT_NE(tensor, nullptr);
    EXPECT_TRUE(isConstInt((*tensor->shape)[0], 3));
    EXPECT_TRUE(isConstInt((*tensor->shape)[1], 6));
}

TEST(ExprTest, ConstantCarriesStaticShape)
{
    NDArray data = NDArray::zeros({2, 3}, DataType::f32());
    Expr constant = makeConstant(data);
    const auto* tensor = asTensor(constant->structInfo());
    ASSERT_NE(tensor, nullptr);
    EXPECT_TRUE(isConstInt((*tensor->shape)[0], 2));
    EXPECT_TRUE(isConstInt((*tensor->shape)[1], 3));
}

TEST(ExprTest, CallTIRCarriesOutputAnnotation)
{
    SymVar n = var("n");
    GlobalVar gv = makeGlobalVar("mm");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    StructInfo out = tensorSInfo({n, intImm(8)}, DataType::f32());
    Call call = callTIR(gv, {x}, out);
    EXPECT_TRUE(isOpCall(call, "relax.call_tir"));
    EXPECT_TRUE(sInfoEqual(call->structInfo(), out));
    ASSERT_EQ(call->sinfoArgs.size(), 1u);
}

TEST(ExprTest, OpsAreInterned)
{
    EXPECT_EQ(getOp("relax.add").get(), getOp("relax.add").get());
    EXPECT_NE(getOp("relax.add").get(), getOp("relax.multiply").get());
}

TEST(ModuleTest, AddLookupAndUniqueNames)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    auto block = std::make_shared<BindingBlockNode>(true);
    Function func = makeFunction({x}, makeSeqExpr({block}, x),
                                 x->structInfo());
    module->addFunction("main", func);
    EXPECT_NE(module->getFunction("main"), nullptr);
    EXPECT_EQ(module->getFunction("missing"), nullptr);
    EXPECT_EQ(module->uniqueName("main"), "main_1");
    EXPECT_EQ(module->uniqueName("fresh"), "fresh");
    EXPECT_EQ(module->getGlobalVar("main").get(),
              module->getGlobalVar("main").get());
}

TEST(WellFormedTest, AcceptsMinimalFunction)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    auto block = std::make_shared<BindingBlockNode>(false);
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, x),
                                     x->structInfo()));
    EXPECT_NO_THROW(wellFormed(module));
}

TEST(WellFormedTest, RejectsUndefinedVariableUse)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    Var ghost = makeVar("ghost", x->structInfo());
    auto block = std::make_shared<BindingBlockNode>(false);
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, ghost),
                                     x->structInfo()));
    EXPECT_THROW(wellFormed(module), IRError);
}

TEST(WellFormedTest, RejectsDataflowVarEscape)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    Var lv = makeVar("lv", x->structInfo(), /*is_dataflow=*/true);
    auto block = std::make_shared<BindingBlockNode>(true);
    block->bindings.push_back({lv, x, false, nullptr});
    // lv escapes via the seq result: ill-formed.
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, lv),
                                     x->structInfo()));
    EXPECT_THROW(wellFormed(module), IRError);
}

TEST(WellFormedTest, RejectsMissingStructInfoOnBinding)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    Var lv = std::make_shared<VarNode>("lv", false); // no annotation
    auto block = std::make_shared<BindingBlockNode>(false);
    block->bindings.push_back({lv, x, false, nullptr});
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, x),
                                     x->structInfo()));
    EXPECT_THROW(wellFormed(module), IRError);
}

TEST(WellFormedTest, RejectsCallTIRToMissingFunc)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    Call call = callTIR(module->getGlobalVar("nonexistent"), {x},
                        x->structInfo());
    Var lv = makeVar("lv", x->structInfo());
    auto block = std::make_shared<BindingBlockNode>(false);
    block->bindings.push_back({lv, call, false, nullptr});
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, lv),
                                     x->structInfo()));
    EXPECT_THROW(wellFormed(module), IRError);
}

TEST(UtilsTest, SubstituteVarsRewritesUses)
{
    SymVar n = var("n");
    Var a = makeVar("a", tensorSInfo({n}, DataType::f32()));
    Var b = makeVar("b", a->structInfo());
    Call call = makeCall(getOp("relax.add"), {a, a});
    RxVarMap map{{a.get(), b}};
    Expr rewritten = substituteVars(call, map);
    const auto* rewritten_call = static_cast<const CallNode*>(rewritten.get());
    EXPECT_EQ(rewritten_call->args[0].get(), b.get());
    EXPECT_EQ(rewritten_call->args[1].get(), b.get());
}

TEST(UtilsTest, CollectVarUsesTraversesStructures)
{
    SymVar n = var("n");
    Var a = makeVar("a", tensorSInfo({n}, DataType::f32()));
    Var b = makeVar("b", a->structInfo());
    Expr tuple = makeTuple({a, makeTupleGetItem(makeTuple({b}), 0)});
    std::unordered_set<const VarNode*> uses;
    collectVarUses(tuple, &uses);
    EXPECT_EQ(uses.size(), 2u);
}

TEST(PrinterTest, RendersDataflowFunction)
{
    auto module = IRModule::create();
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    Var lv = makeVar("lv0", x->structInfo(), true);
    Var out = makeVar("gv0", x->structInfo());
    auto block = std::make_shared<BindingBlockNode>(true);
    block->bindings.push_back(
        {lv, makeCall(getOp("relax.exp"), {x}), false, nullptr});
    block->bindings.push_back({out, lv, false, nullptr});
    module->addFunction("main",
                        makeFunction({x}, makeSeqExpr({block}, out),
                                     x->structInfo()));
    std::string text = module->toString();
    EXPECT_NE(text.find("def main(x: Tensor((n, 4), \"f32\"))"),
              std::string::npos);
    EXPECT_NE(text.find("with dataflow():"), std::string::npos);
    EXPECT_NE(text.find("lv0: Tensor((n, 4), \"f32\") = exp(x)"),
              std::string::npos);
    EXPECT_NE(text.find("return gv0"), std::string::npos);
}

} // namespace
} // namespace relax
} // namespace ir
