/**
 * @file
 * Tensor-parallel serving tests: the sharding contract of DESIGN.md §10.
 * A tp=N engine must emit token-for-token what the tp=1 engine emits on
 * the same trace (scheduling state is kept in logical full-model bytes,
 * so admission/eviction decisions are bit-identical and the only numeric
 * difference is f64 reassociation at the reduce sites — invisible to
 * greedy argmax), while `decodeBatches == steps` survives sharding and
 * the ring collectives are genuinely priced on the group clock.
 */
#include <gtest/gtest.h>

#include "serve/engine.h"

namespace relax {
namespace serve {
namespace {

using frontend::LlamaConfig;

frontend::CompileOptions
hostOptions(int64_t vram = int64_t(8) << 30)
{
    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = vram;
    return options;
}

/** tiny() has numHeads == 2; tp=4 needs a width-4-divisible model. */
LlamaConfig
tiny4()
{
    LlamaConfig config = LlamaConfig::tiny();
    config.name = "tiny4";
    config.hiddenSize = 16;
    config.numLayers = 2;
    config.numHeads = 4;
    config.headDim = 4;
    config.ffnSize = 32;
    config.vocabSize = 64;
    config.maxContext = 64;
    return config;
}

std::vector<FinishedRequest>
runTrace(const LlamaConfig& config, int64_t tp, EngineStats* stats_out,
         Engine** engine_out = nullptr,
         std::unique_ptr<Engine>* keep_alive = nullptr)
{
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1, 5, 9, 2}, {2, 7}, {6, 1, 8, 3, 1}, {4, 4, 4}};
    EngineOptions options;
    options.tensorParallel = tp;
    auto engine =
        Engine::build(config, hostOptions(), /*data_mode=*/true, options);
    for (const auto& prompt : prompts) engine->addRequest(prompt, 6);
    *stats_out = engine->run();
    auto results = engine->collect();
    if (engine_out) *engine_out = engine.get();
    if (keep_alive) *keep_alive = std::move(engine);
    return results;
}

TEST(TensorParallelTest, ShardedTokensMatchSingleDevice)
{
    // The TP oracle: for each model, tp=1 vs tp=N on the identical trace
    // — same requests, same tokens, decodeBatches == steps at every N.
    struct Case
    {
        LlamaConfig config;
        int64_t tp;
    };
    std::vector<Case> cases = {{LlamaConfig::tiny(), 2},
                               {tiny4(), 2},
                               {tiny4(), 4}};
    for (const auto& c : cases) {
        EngineStats base_stats;
        auto base = runTrace(c.config, 1, &base_stats);
        EngineStats tp_stats;
        Engine* engine = nullptr;
        std::unique_ptr<Engine> keep;
        auto sharded = runTrace(c.config, c.tp, &tp_stats, &engine, &keep);

        ASSERT_EQ(sharded.size(), base.size());
        for (size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(sharded[i].outputTokens, base[i].outputTokens)
                << c.config.name << " tp=" << c.tp << " request " << i;
        }
        // One packed call per step on every shard, in lockstep.
        EXPECT_EQ(tp_stats.decodeBatches, tp_stats.steps);
        EXPECT_EQ(tp_stats.steps, base_stats.steps);

        // The collectives are real: two all_reduces per layer plus the
        // logits all_gather, on every packed call (prefill included).
        ASSERT_NE(engine->deviceGroup(), nullptr);
        EXPECT_EQ(engine->tensorParallel(), (int)c.tp);
        int64_t per_call = 2 * c.config.numLayers + 1;
        EXPECT_EQ(engine->deviceGroup()->collectiveCount(),
                  tp_stats.steps * per_call);
        EXPECT_GT(engine->deviceGroup()->collectiveUs(), 0.0);
        EXPECT_GT(engine->deviceGroup()->collectiveBytes(), 0);
    }
}

TEST(TensorParallelTest, PerDeviceGaugesCoverEveryShard)
{
    EngineStats stats;
    Engine* engine = nullptr;
    std::unique_ptr<Engine> keep;
    runTrace(LlamaConfig::tiny(), 2, &stats, &engine, &keep);

    for (int i = 0; i < 2; ++i) {
        std::string prefix = "device." + std::to_string(i) + ".";
        const auto& gauges = engine->metrics().gauges();
        auto alloc = gauges.find(prefix + "alloc_bytes");
        auto peak = gauges.find(prefix + "peak_bytes");
        ASSERT_NE(alloc, gauges.end()) << prefix;
        ASSERT_NE(peak, gauges.end()) << prefix;
        EXPECT_EQ(alloc->second.samples(), stats.steps);
        // Every shard holds its slice of the KV pool persistently.
        EXPECT_GT(alloc->second.last(), 0.0);
        EXPECT_GE(peak->second.last(), alloc->second.last());
    }
    // tp=1 engines emit the same lanes for device 0 only.
    EngineStats solo_stats;
    Engine* solo = nullptr;
    std::unique_ptr<Engine> solo_keep;
    runTrace(LlamaConfig::tiny(), 1, &solo_stats, &solo, &solo_keep);
    const auto& gauges = solo->metrics().gauges();
    EXPECT_NE(gauges.find("device.0.alloc_bytes"), gauges.end());
    EXPECT_EQ(gauges.find("device.1.alloc_bytes"), gauges.end());
}

TEST(TensorParallelTest, TimingModeShardsFasterThanSingleDevice)
{
    // The perf contract on a compute-heavy config: tp=4 finishes the
    // same trace in under half the single-device wall-clock. tiny() is
    // launch-overhead-bound, so use an 8-layer llama3-8b-dims variant
    // in timing mode (metaOnly weights, no data).
    LlamaConfig config = LlamaConfig::llama3_8b();
    config.name = "llama3-8b-8l";
    config.numLayers = 8;
    config.maxContext = 512;

    auto runUs = [&](int64_t tp) {
        EngineOptions options;
        options.tensorParallel = tp;
        auto engine = Engine::build(config, hostOptions(int64_t(80) << 30),
                                    /*data_mode=*/false, options);
        for (int i = 0; i < 8; ++i) {
            engine->addRequest(std::vector<int64_t>(64, 3), 32);
        }
        return engine->run().busyUs;
    };
    double tp1 = runUs(1);
    double tp4 = runUs(4);
    EXPECT_LT(tp4 * 2.0, tp1) << "tp4=" << tp4 << "us tp1=" << tp1 << "us";
}

} // namespace
} // namespace serve
} // namespace relax
