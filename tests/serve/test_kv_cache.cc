/**
 * @file
 * KVCacheManager tests: page-pool geometry, the resident upfront pool
 * allocation, the reserve/fork/copy-on-write/release page lifecycle,
 * budget enforcement, and that the byte accounting always matches pool
 * occupancy (used + free pages == the whole pool).
 */
#include <gtest/gtest.h>

#include "serve/kv_cache.h"

namespace relax {
namespace serve {
namespace {

struct Fixture
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    std::shared_ptr<device::SimDevice> dev;
    vm::VirtualMachine machine;

    explicit Fixture(int64_t vram = int64_t(1) << 30)
        : dev(std::make_shared<device::SimDevice>([vram] {
              device::DeviceSpec spec;
              spec.name = "host";
              spec.backend = "cpu";
              spec.vramBytes = vram;
              return spec;
          }())),
          machine(std::make_shared<vm::Executable>(), dev,
                  /*data_mode=*/true)
    {
    }
};

TEST(KVCacheTest, BlockGeometry)
{
    Fixture fx;
    // tiny: 2 layers * 2 heads * 4 dim * 2 (k+v) * 2 bytes = 64 B/token.
    EXPECT_EQ(fx.config.kvBytesPerToken(), 64);
    KVCacheManager kv(fx.config, fx.machine, /*budget=*/64 * 4 * 10,
                      /*blockTokens=*/4);
    EXPECT_EQ(kv.bytesPerBlock(), 64 * 4);
    EXPECT_EQ(kv.totalPages(), 10);
    EXPECT_EQ(kv.blocksFor(1), 1);
    EXPECT_EQ(kv.blocksFor(4), 1);
    EXPECT_EQ(kv.blocksFor(5), 2);
    EXPECT_EQ(kv.blocksFor(12), 3);
    // One pool tensor per layer per k/v, [p, h, block, d].
    ASSERT_EQ(kv.poolTensors().size(), (size_t)2 * fx.config.numLayers);
    EXPECT_EQ(kv.poolTensors()[0].shape(),
              (std::vector<int64_t>{10, fx.config.numHeads, 4,
                                    fx.config.headDim}));
}

TEST(KVCacheTest, PoolIsResidentUpFront)
{
    // vLLM-style preallocation: the whole pool is device-resident for
    // the manager's lifetime; reserve/release move logical pages only.
    Fixture fx;
    int64_t base = fx.dev->allocatedBytes();
    {
        KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
        EXPECT_EQ(fx.dev->allocatedBytes() - base,
                  kv.totalPages() * kv.bytesPerBlock());
        kv.reserve(1, 8);
        EXPECT_EQ(fx.dev->allocatedBytes() - base,
                  kv.totalPages() * kv.bytesPerBlock());
    }
    EXPECT_EQ(fx.dev->allocatedBytes(), base);
}

TEST(KVCacheTest, ReserveGrowReleaseTracksPoolOccupancy)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);

    kv.reserve(/*seq=*/1, /*tokens=*/4); // 1 page
    EXPECT_EQ(kv.usedPages(), 1);
    EXPECT_EQ(kv.usedBytes(), kv.bytesPerBlock());

    kv.reserve(1, 5); // grows to 2 pages
    EXPECT_EQ(kv.usedPages(), 2);
    kv.reserve(1, 5); // idempotent: already holds 5 positions
    EXPECT_EQ(kv.usedPages(), 2);
    EXPECT_EQ(kv.reservedTokens(1), 5);
    EXPECT_EQ(kv.pagesOf(1), 2);

    // Accounting identity: used + free pages always cover the pool.
    EXPECT_EQ(kv.usedPages() + kv.freePages(), kv.totalPages());

    kv.release(1);
    EXPECT_EQ(kv.usedPages(), 0);
    EXPECT_EQ(kv.usedBytes(), 0);
    EXPECT_EQ(kv.freePages(), kv.totalPages());
    EXPECT_EQ(kv.reservedTokens(1), 0);
    kv.release(1); // unknown id: no-op
}

TEST(KVCacheTest, BudgetRefusesOverCommit)
{
    Fixture fx;
    // Room for exactly 3 pages.
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 3, 4);
    EXPECT_TRUE(kv.canHold(1, 12));
    EXPECT_FALSE(kv.canHold(1, 13));
    kv.reserve(1, 8); // 2 pages
    EXPECT_EQ(kv.freeBytes(), kv.budgetBytes() - 2 * kv.bytesPerBlock());
    EXPECT_TRUE(kv.canHold(2, 4));
    EXPECT_FALSE(kv.canHold(2, 5));
    // A sequence's own pages count toward what it can still hold.
    EXPECT_TRUE(kv.canHold(1, 12));
    EXPECT_THROW(kv.reserve(2, 8), RuntimeError);
    kv.release(1);
    kv.reserve(2, 8);
    EXPECT_EQ(kv.usedPages(), 2);
}

TEST(KVCacheTest, PeakTracksHighWaterMark)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 8);
    kv.reserve(2, 8);
    EXPECT_EQ(kv.peakBytes(), 4 * kv.bytesPerBlock());
    kv.release(1);
    kv.release(2);
    EXPECT_EQ(kv.usedBytes(), 0);
    EXPECT_EQ(kv.peakBytes(), 4 * kv.bytesPerBlock());
}

TEST(KVCacheTest, CommitTracksWrittenPositionsBelowReservation)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 6); // 2 pages reserved
    EXPECT_EQ(kv.committedTokens(1), 0);
    kv.commit(1, 5);
    EXPECT_EQ(kv.committedTokens(1), 5);
    EXPECT_EQ(kv.reservedTokens(1), 6);
    kv.commit(1, 6);
    EXPECT_EQ(kv.committedTokens(1), 6);
    kv.release(1);
    EXPECT_EQ(kv.committedTokens(1), 0);
}

TEST(KVCacheTest, RaggedViewsExposeLengthsAndBlockTable)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(7, 6); // pages 0, 1
    kv.commit(7, 5);
    kv.reserve(9, 3); // page 2
    kv.commit(9, 3);

    NDArray lens = kv.lengthsView({9, 7});
    ASSERT_EQ(lens.shape(), (std::vector<int64_t>{2}));
    EXPECT_TRUE(lens.hasData()); // host metadata: data in timing mode too
    EXPECT_EQ((int64_t)lens.at(0), 3);
    EXPECT_EQ((int64_t)lens.at(1), 5);

    NDArray table = kv.blockTableView({9, 7}, /*width=*/3);
    ASSERT_EQ(table.shape(), (std::vector<int64_t>{2, 3}));
    // Row 0 (seq 9): one owned page, -1 padding after.
    EXPECT_EQ((int64_t)table.at(0), 2);
    EXPECT_EQ((int64_t)table.at(1), -1);
    EXPECT_EQ((int64_t)table.at(2), -1);
    // Row 1 (seq 7): two owned pages.
    EXPECT_EQ((int64_t)table.at(3), 0);
    EXPECT_EQ((int64_t)table.at(4), 1);
    EXPECT_EQ((int64_t)table.at(5), -1);
}

TEST(KVCacheTest, ForkSharesPagesByRefcount)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 8); // pages 0, 1
    kv.commit(1, 7);

    // Child maps onto the pages of the parent's first 6 committed
    // positions: both pages shared, zero new pages in use.
    kv.fork(1, 2, 6);
    EXPECT_EQ(kv.forkCount(), 1);
    EXPECT_EQ(kv.usedPages(), 2);
    EXPECT_EQ(kv.pagesOf(2), 2);
    EXPECT_EQ(kv.committedTokens(2), 6);
    NDArray table = kv.blockTableView({1, 2}, 2);
    EXPECT_EQ((int64_t)table.at(0), (int64_t)table.at(2));
    EXPECT_EQ((int64_t)table.at(1), (int64_t)table.at(3));

    // Fork clamps to the parent's committed positions.
    kv.fork(1, 3, 100);
    EXPECT_EQ(kv.committedTokens(3), 7);

    // Releasing the parent keeps shared pages alive for the children.
    kv.release(1);
    EXPECT_EQ(kv.usedPages(), 2);
    kv.release(2);
    EXPECT_EQ(kv.usedPages(), 2); // seq 3 still references both
    kv.release(3);
    EXPECT_EQ(kv.usedPages(), 0);

    // Forking from an unknown parent is a no-op (graceful degradation).
    kv.fork(42, 5, 4);
    EXPECT_EQ(kv.pagesOf(5), 0);
    EXPECT_EQ(kv.forkCount(), 2);
}

TEST(KVCacheTest, CopyOnWriteUnsharesTheWriteRange)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 6); // pages 0, 1; position 5 is mid-page
    kv.commit(1, 6);
    // Poison page 1 so the copy is observable: pool row of page 1.
    NDArray pool = kv.poolTensors()[0];
    int64_t row = pool.numel() / kv.totalPages();
    for (int64_t i = 0; i < row; ++i) pool.set(1 * row + i, 42.0);

    kv.fork(1, 2, 6); // two children share pages 0 and 1
    kv.fork(1, 3, 6); // (partial last page in both forks)
    int64_t launches_before = fx.dev->kernelLaunches();

    // The parent's next append writes position 6 inside shared page 1:
    // copy-on-write gives the writer a private copy, priced on the
    // device clock, and repoints only the writer's table row.
    EXPECT_TRUE(kv.canHoldWrite(1, 7, 6));
    kv.reserveWrite(1, 7, 6);
    EXPECT_EQ(kv.cowCopies(), 1);
    EXPECT_EQ(kv.cowBytes(), kv.bytesPerBlock());
    EXPECT_EQ(fx.dev->kernelLaunches(), launches_before + 1);
    EXPECT_EQ(kv.usedPages(), 3); // page 0 (shared), page 1, the copy

    NDArray parent_table = kv.blockTableView({1}, 2);
    NDArray child_table = kv.blockTableView({2}, 2);
    EXPECT_EQ((int64_t)parent_table.at(0), (int64_t)child_table.at(0));
    int64_t copied = (int64_t)parent_table.at(1);
    EXPECT_NE(copied, (int64_t)child_table.at(1));
    // The copy carried the page contents (data mode).
    for (int64_t i = 0; i < row; ++i) {
        EXPECT_EQ(pool.at(copied * row + i), 42.0) << "element " << i;
    }

    // Writing an exclusively-owned range never copies.
    kv.reserveWrite(1, 8, 7);
    EXPECT_EQ(kv.cowCopies(), 1);

    // The first child's write still hits a page shared with the second
    // child: it copies too...
    kv.reserveWrite(2, 7, 6);
    EXPECT_EQ(kv.cowCopies(), 2);
    EXPECT_EQ(kv.usedPages(), 4);
    // ...after which the second child owns the original page alone and
    // writes without copying (refcounts transferred all the way down).
    kv.reserveWrite(3, 7, 6);
    EXPECT_EQ(kv.cowCopies(), 2);
}

TEST(KVCacheTest, CanHoldWriteCountsCowPages)
{
    Fixture fx;
    // Pool of exactly 3 pages.
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 3, 4);
    kv.reserve(1, 8); // pages 0, 1
    kv.commit(1, 6);
    kv.fork(1, 2, 6); // both pages shared; 1 page free
    kv.reserve(3, 4); // takes the last free page
    // The parent's write at position 6 needs one COW page, and none is
    // free — canHoldWrite must say so instead of letting reserveWrite
    // run the pool dry mid-copy.
    EXPECT_FALSE(kv.canHoldWrite(1, 7, 6));
    EXPECT_THROW(kv.reserveWrite(1, 7, 6), RuntimeError);
    EXPECT_EQ(kv.cowCopies(), 0);
    kv.release(3); // a page frees up: the same write now fits
    EXPECT_TRUE(kv.canHoldWrite(1, 7, 6));
    kv.reserveWrite(1, 7, 6);
    EXPECT_EQ(kv.cowCopies(), 1);
    EXPECT_EQ(kv.freePages(), 0);
    // The COW repointed the parent, so the child now owns its last page
    // exclusively: its own write needs no pages even with none free.
    EXPECT_TRUE(kv.canHoldWrite(2, 7, 6));
    kv.reserveWrite(2, 7, 6);
    EXPECT_EQ(kv.cowCopies(), 1);
}

TEST(KVCacheTest, PrefixIndexLifecycleMatchForkThenCowOnDivergence)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    std::vector<int64_t> prompt = {3, 1, 4, 1, 5, 9, 2, 6};

    // Nothing indexed yet: a probe matches nothing and leaves no trace.
    EXPECT_EQ(kv.matchPrefix(9, prompt), 0);
    EXPECT_EQ(kv.committedTokens(9), 0);

    // Prefill seq 1 and register: both full blocks land in the index.
    kv.reserve(1, 8);
    kv.commit(1, 8);
    kv.registerCommitted(1, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);
    // Registration is idempotent (pages already indexed only advance
    // the chain).
    kv.registerCommitted(1, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);

    // A duplicate prompt with a fresh tail matches both blocks and maps
    // straight onto seq 1's pages — a fork in refcount terms, no copies.
    std::vector<int64_t> duplicate = prompt;
    duplicate.push_back(8);
    EXPECT_EQ(kv.matchPrefix(2, duplicate), 8);
    EXPECT_EQ(kv.committedTokens(2), 8);
    EXPECT_EQ(kv.pagesOf(2), 2);
    EXPECT_EQ(kv.usedPages(), 2); // fully shared
    EXPECT_EQ(kv.forkCount(), 1);
    EXPECT_EQ(kv.prefixHits(), 1);
    EXPECT_EQ(kv.prefixTokensMatched(), 8);
    NDArray tables = kv.blockTableView({1, 2}, 2);
    EXPECT_EQ((int64_t)tables.at(0), (int64_t)tables.at(2));
    EXPECT_EQ((int64_t)tables.at(1), (int64_t)tables.at(3));

    // An identical-prompt probe is capped so the child still prefills
    // its first-logits token itself: 8 tokens match only the first block.
    EXPECT_EQ(kv.matchPrefix(3, prompt), 4);
    EXPECT_EQ(kv.prefixTokensMatched(), 12);

    // Divergence inside a shared block (the COW safety net): a write
    // into matched page 0 copies it for the writer and leaves the other
    // holders' tables untouched.
    int64_t shared_page = (int64_t)tables.at(0);
    kv.reserveWrite(2, 4, 2);
    EXPECT_EQ(kv.cowCopies(), 1);
    NDArray after = kv.blockTableView({1, 2}, 2);
    EXPECT_EQ((int64_t)after.at(0), shared_page);
    EXPECT_NE((int64_t)after.at(2), shared_page);
    kv.release(1);
    kv.release(2);
    kv.release(3);
    EXPECT_EQ(kv.usedPages(), 0);
    EXPECT_EQ(kv.indexedBlocks(), 0);
}

TEST(KVCacheTest, HashCollisionsFallBackToNoShareViaContentVerify)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    // Force every block onto one hash chain: the index degenerates into
    // a single collision bucket, so content verification alone decides.
    kv.setBlockHashForTest(
        [](uint64_t, const int64_t*, int64_t) { return (uint64_t)42; });

    std::vector<int64_t> prompt_a = {1, 2, 3, 4, 5, 6, 7, 8};
    kv.reserve(1, 8);
    kv.commit(1, 8);
    kv.registerCommitted(1, prompt_a);
    EXPECT_EQ(kv.indexedBlocks(), 2);

    // Different tokens, same (forced) hash: the colliding candidate must
    // be rejected, never shared — wrong shares would serve another
    // prompt's KV values.
    std::vector<int64_t> prompt_b = {9, 9, 9, 9, 5};
    EXPECT_EQ(kv.matchPrefix(2, prompt_b), 0);
    EXPECT_EQ(kv.committedTokens(2), 0);
    EXPECT_EQ(kv.pagesOf(2), 0);
    EXPECT_EQ(kv.prefixHits(), 0);

    // Identical content still matches under the degenerate hash...
    std::vector<int64_t> duplicate_a = prompt_a;
    duplicate_a.push_back(1);
    EXPECT_EQ(kv.matchPrefix(3, duplicate_a), 8);
    kv.release(3);

    // ...and the prev-page chain rejects a block candidate from the
    // wrong chain even when its content matches: the probe's block 0
    // matches seq 4's chain, its block 1 content equals seq 1's block 1
    // ({5,6,7,8}) — but that entry's predecessor is seq 1's block-0
    // page, not seq 4's, so accepting it would serve KV values computed
    // under a different prefix. The match must stop after block 0.
    std::vector<int64_t> prompt_c = {7, 7, 7, 7, 9, 9, 9, 9};
    kv.reserve(4, 8);
    kv.commit(4, 8);
    kv.registerCommitted(4, prompt_c);
    std::vector<int64_t> probe = {7, 7, 7, 7, 5, 6, 7, 8, 0};
    EXPECT_EQ(kv.matchPrefix(5, probe), 4);
    kv.release(5);

    kv.setBlockHashForTest(nullptr); // restore FNV chain
    kv.release(1);
    kv.release(4);
    EXPECT_EQ(kv.indexedBlocks(), 0);
}

TEST(KVCacheTest, EvictionRemovesIndexEntriesAndReRegistrationRevives)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    std::vector<int64_t> prompt = {2, 7, 1, 8, 2, 8, 1, 8};
    kv.reserve(1, 8);
    kv.commit(1, 8);
    kv.registerCommitted(1, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);

    // Shared pages stay indexed while ANY holder is live: releasing the
    // registrant does not strand the matcher that still references them.
    kv.matchPrefix(2, prompt); // matches block 0
    kv.release(1);
    EXPECT_EQ(kv.indexedBlocks(), 1); // block 1's page freed, block 0 lives
    std::vector<int64_t> longer = prompt;
    longer.push_back(3);
    EXPECT_EQ(kv.matchPrefix(3, longer), 4); // block 0 still matchable
    kv.release(3);

    // Last reference gone -> pages freed -> index fully emptied; a
    // stale-index match is now impossible by construction.
    kv.release(2);
    EXPECT_EQ(kv.usedPages(), 0);
    EXPECT_EQ(kv.indexedBlocks(), 0);
    EXPECT_EQ(kv.matchPrefix(4, longer), 0);

    // Re-prefill after eviction re-registers under the new pages and
    // serves matches again — the index tracks content, not history.
    kv.reserve(5, 8);
    kv.commit(5, 8);
    kv.registerCommitted(5, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);
    EXPECT_EQ(kv.matchPrefix(6, longer), 8);
    EXPECT_EQ(kv.usedPages(), 2);
}

TEST(KVCacheTest, RegisterCommittedCoversGeneratedTokensForReAdmission)
{
    // An evicted-and-requeued sequence re-prefills prompt + generated:
    // registration is keyed on committed content, whatever its origin,
    // so a requeued twin can reuse the survivor's pages.
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    std::vector<int64_t> prompt_plus_generated = {5, 3, 0, 9, 4, 4, 1};
    kv.reserve(1, 7);
    kv.commit(1, 7); // only block 0 is full (7 < 2*4)
    kv.registerCommitted(1, prompt_plus_generated);
    EXPECT_EQ(kv.indexedBlocks(), 1);
    EXPECT_EQ(kv.matchPrefix(2, prompt_plus_generated), 4);
    EXPECT_EQ(kv.committedTokens(2), 4);

    // Growing the committed prefix to the next full block extends the
    // registration chain incrementally.
    std::vector<int64_t> grown = prompt_plus_generated;
    grown.push_back(6);
    kv.reserve(1, 8);
    kv.commit(1, 8);
    kv.registerCommitted(1, grown);
    EXPECT_EQ(kv.indexedBlocks(), 2);
    std::vector<int64_t> probe = grown;
    probe.push_back(0);
    EXPECT_EQ(kv.matchPrefix(3, probe), 8);
}

TEST(KVCacheTest, TruncateReturnsWholePagesAndRewindsCommitted)
{
    // Speculative-decode rollback: rejected draft positions are discarded
    // by rewinding the sequence, returning any page that held only
    // un-kept positions and clamping the committed frontier in the last
    // retained page.
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 10); // pages 0, 1, 2
    kv.commit(1, 10);
    EXPECT_EQ(kv.usedPages(), 3);

    // Rewind to 5 positions: page 2 goes back to the pool whole, page 1
    // rewinds in place (reservation stays page-granular).
    EXPECT_EQ(kv.truncate(1, 5), 1);
    EXPECT_EQ(kv.usedPages(), 2);
    EXPECT_EQ(kv.committedTokens(1), 5);
    EXPECT_EQ(kv.reservedTokens(1), 8);
    EXPECT_EQ(kv.truncateCount(), 1);
    EXPECT_EQ(kv.usedPages() + kv.freePages(), kv.totalPages());

    // Truncating to the current length is a no-op and counts nothing —
    // the all-accepted speculation window costs no bookkeeping.
    EXPECT_EQ(kv.truncate(1, 5), 0);
    EXPECT_EQ(kv.truncate(1, 8), 0);
    EXPECT_EQ(kv.truncateCount(), 1);

    // Regrowing reuses the freed page; truncate(0) returns everything
    // while the id stays known; unknown ids are a graceful no-op.
    kv.reserve(1, 12);
    EXPECT_EQ(kv.usedPages(), 3);
    EXPECT_EQ(kv.truncate(1, 0), 3);
    EXPECT_EQ(kv.usedPages(), 0);
    EXPECT_EQ(kv.committedTokens(1), 0);
    EXPECT_EQ(kv.truncate(42, 0), 0);
}

TEST(KVCacheTest, TruncateDropsStaleIndexEntriesBeforeReMatching)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    // Constant hash: every block lands on one collision chain, so only
    // the entry bookkeeping — never hash luck — decides what a probe
    // can see.
    kv.setBlockHashForTest(
        [](uint64_t, const int64_t*, int64_t) { return (uint64_t)7; });
    std::vector<int64_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8};
    kv.reserve(1, 8);
    kv.commit(1, 8);
    kv.registerCommitted(1, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);

    // Rollback rewinds seq 1 into block 1. The page stays with its sole
    // owner, who will rewrite positions 5.. in place — but its index
    // entry still advertises the OLD tokens {5,6,7,8}. Serving that
    // entry to a matcher would share about-to-diverge content, so the
    // entry must be dropped before any re-match.
    EXPECT_EQ(kv.truncate(1, 5), 0); // rewind only: no page returned
    EXPECT_EQ(kv.indexedBlocks(), 1);
    std::vector<int64_t> probe = prompt;
    probe.push_back(9);
    EXPECT_EQ(kv.matchPrefix(2, probe), 4); // block 0 only
    kv.release(2);

    // Shared pages keep their entries: re-register, let a child map both
    // blocks, then rewind the registrant again. Copy-on-write repoints
    // the rewinder to a private page before it can write, so the shared
    // original (and its index entry) stays valid for everyone else.
    kv.commit(1, 8);
    kv.registerCommitted(1, prompt);
    EXPECT_EQ(kv.indexedBlocks(), 2);
    EXPECT_EQ(kv.matchPrefix(3, probe), 8);
    EXPECT_EQ(kv.truncate(1, 5), 0);
    EXPECT_EQ(kv.indexedBlocks(), 2);
    EXPECT_EQ(kv.matchPrefix(4, probe), 8);

    kv.setBlockHashForTest(nullptr);
    kv.release(1);
    kv.release(3);
    kv.release(4);
    EXPECT_EQ(kv.usedPages(), 0);
    EXPECT_EQ(kv.indexedBlocks(), 0);
}

TEST(KVCacheTest, CowBatchPricesOneBurstLaunch)
{
    // One engine step can trigger several copy-on-write page copies (one
    // per diverging writer). Inside a begin/flush bracket the data still
    // moves eagerly, but the device is charged ONE burst launch for the
    // whole sweep — the cudaMemcpyAsync-batch shape — instead of one
    // launch per page.
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 6); // pages 0, 1; position 5 mid-page
    kv.commit(1, 6);
    NDArray pool = kv.poolTensors()[0];
    int64_t row = pool.numel() / kv.totalPages();
    for (int64_t i = 0; i < row; ++i) pool.set(1 * row + i, 42.0);
    kv.fork(1, 2, 6);
    kv.fork(1, 3, 6);

    int64_t launches_before = fx.dev->kernelLaunches();
    kv.beginCowBatch();
    kv.reserveWrite(1, 7, 6); // COW of page 1 (three-way shared)
    kv.reserveWrite(2, 7, 6); // COW of the original (still shared with 3)
    EXPECT_EQ(kv.cowCopies(), 2);
    EXPECT_EQ(kv.cowBytes(), 2 * kv.bytesPerBlock());
    // Pricing is deferred until the flush...
    EXPECT_EQ(fx.dev->kernelLaunches(), launches_before);
    EXPECT_EQ(kv.flushCowBatch(), 2);
    // ...which issues exactly one launch for both pages.
    EXPECT_EQ(fx.dev->kernelLaunches(), launches_before + 1);

    // The copies carried the page contents despite deferred pricing.
    NDArray parent_table = kv.blockTableView({1}, 2);
    int64_t copied = (int64_t)parent_table.at(1);
    for (int64_t i = 0; i < row; ++i) {
        EXPECT_EQ(pool.at(copied * row + i), 42.0) << "element " << i;
    }

    // An empty batch flushes to nothing — no phantom launch.
    kv.beginCowBatch();
    EXPECT_EQ(kv.flushCowBatch(), 0);
    EXPECT_EQ(fx.dev->kernelLaunches(), launches_before + 1);
}

TEST(KVCacheTest, DestructorReturnsThePool)
{
    Fixture fx;
    int64_t base = fx.dev->allocatedBytes();
    {
        KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
        kv.reserve(1, 8);
        EXPECT_GT(fx.dev->allocatedBytes(), base);
    }
    EXPECT_EQ(fx.dev->allocatedBytes(), base);
}

} // namespace
} // namespace serve
} // namespace relax
