/**
 * @file
 * KVCacheManager tests: paged block geometry, reserve/grow/release
 * lifecycle, budget enforcement, and that every reserved byte shows up in
 * the simulated device's VRAM accounting as persistent VM storage.
 */
#include <gtest/gtest.h>

#include "serve/kv_cache.h"

namespace relax {
namespace serve {
namespace {

struct Fixture
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    std::shared_ptr<device::SimDevice> dev;
    vm::VirtualMachine machine;

    explicit Fixture(int64_t vram = int64_t(1) << 30)
        : dev(std::make_shared<device::SimDevice>([vram] {
              device::DeviceSpec spec;
              spec.name = "host";
              spec.backend = "cpu";
              spec.vramBytes = vram;
              return spec;
          }())),
          machine(std::make_shared<vm::Executable>(), dev,
                  /*data_mode=*/true)
    {
    }
};

TEST(KVCacheTest, BlockGeometry)
{
    Fixture fx;
    // tiny: 2 layers * 2 heads * 4 dim * 2 (k+v) * 2 bytes = 64 B/token.
    EXPECT_EQ(fx.config.kvBytesPerToken(), 64);
    KVCacheManager kv(fx.config, fx.machine, /*budget=*/64 * 4 * 10,
                      /*blockTokens=*/4);
    EXPECT_EQ(kv.bytesPerBlock(), 64 * 4);
    EXPECT_EQ(kv.blocksFor(1), 1);
    EXPECT_EQ(kv.blocksFor(4), 1);
    EXPECT_EQ(kv.blocksFor(5), 2);
    EXPECT_EQ(kv.blocksFor(12), 3);
}

TEST(KVCacheTest, ReserveGrowReleaseAccountsDeviceBytes)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    int64_t base = fx.dev->allocatedBytes();

    kv.reserve(/*seq=*/1, /*tokens=*/4); // 1 block
    EXPECT_EQ(kv.usedBytes(), kv.bytesPerBlock());
    EXPECT_EQ(fx.dev->allocatedBytes() - base, kv.bytesPerBlock());

    kv.reserve(1, 5); // grows to 2 blocks
    EXPECT_EQ(kv.usedBytes(), 2 * kv.bytesPerBlock());
    kv.reserve(1, 5); // idempotent: already holds 5 positions
    EXPECT_EQ(kv.usedBytes(), 2 * kv.bytesPerBlock());
    EXPECT_EQ(kv.reservedTokens(1), 5);

    kv.release(1);
    EXPECT_EQ(kv.usedBytes(), 0);
    EXPECT_EQ(fx.dev->allocatedBytes(), base);
    EXPECT_EQ(kv.reservedTokens(1), 0);
    kv.release(1); // unknown id: no-op
}

TEST(KVCacheTest, BudgetRefusesOverCommit)
{
    Fixture fx;
    // Room for exactly 3 blocks.
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 3, 4);
    EXPECT_TRUE(kv.canHold(1, 12));
    EXPECT_FALSE(kv.canHold(1, 13));
    kv.reserve(1, 8); // 2 blocks
    EXPECT_EQ(kv.freeBytes(), kv.budgetBytes() - 2 * kv.bytesPerBlock());
    EXPECT_TRUE(kv.canHold(2, 4));
    EXPECT_FALSE(kv.canHold(2, 5));
    // A sequence's own blocks count toward what it can still hold.
    EXPECT_TRUE(kv.canHold(1, 12));
    EXPECT_THROW(kv.reserve(2, 8), RuntimeError);
    kv.release(1);
    kv.reserve(2, 8);
    EXPECT_EQ(kv.usedBytes(), 2 * kv.bytesPerBlock());
}

TEST(KVCacheTest, PeakTracksHighWaterMark)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 8);
    kv.reserve(2, 8);
    EXPECT_EQ(kv.peakBytes(), 4 * kv.bytesPerBlock());
    kv.release(1);
    kv.release(2);
    EXPECT_EQ(kv.usedBytes(), 0);
    EXPECT_EQ(kv.peakBytes(), 4 * kv.bytesPerBlock());
}

TEST(KVCacheTest, CommitTracksWrittenPositionsBelowReservation)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(1, 6); // 2 blocks reserved
    EXPECT_EQ(kv.committedTokens(1), 0);
    kv.commit(1, 5);
    EXPECT_EQ(kv.committedTokens(1), 5);
    EXPECT_EQ(kv.reservedTokens(1), 6);
    kv.commit(1, 6);
    EXPECT_EQ(kv.committedTokens(1), 6);
    kv.release(1);
    EXPECT_EQ(kv.committedTokens(1), 0);
}

TEST(KVCacheTest, RaggedViewsExposeLengthsAndBlockTable)
{
    Fixture fx;
    KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
    kv.reserve(7, 6); // blocks 0, 1
    kv.commit(7, 5);
    kv.reserve(9, 3); // block 2
    kv.commit(9, 3);

    NDArray lens = kv.lengthsView({9, 7});
    ASSERT_EQ(lens.shape(), (std::vector<int64_t>{2}));
    EXPECT_TRUE(lens.hasData()); // host metadata: data in timing mode too
    EXPECT_EQ((int64_t)lens.at(0), 3);
    EXPECT_EQ((int64_t)lens.at(1), 5);

    NDArray table = kv.blockTableView({9, 7}, /*width=*/3);
    ASSERT_EQ(table.shape(), (std::vector<int64_t>{2, 3}));
    // Row 0 (seq 9): one owned block, -1 padding after.
    EXPECT_EQ((int64_t)table.at(0), 2);
    EXPECT_EQ((int64_t)table.at(1), -1);
    EXPECT_EQ((int64_t)table.at(2), -1);
    // Row 1 (seq 7): two owned blocks.
    EXPECT_EQ((int64_t)table.at(3), 0);
    EXPECT_EQ((int64_t)table.at(4), 1);
    EXPECT_EQ((int64_t)table.at(5), -1);
}

TEST(KVCacheTest, DestructorReturnsOutstandingBlocks)
{
    Fixture fx;
    int64_t base = fx.dev->allocatedBytes();
    {
        KVCacheManager kv(fx.config, fx.machine, 64 * 4 * 8, 4);
        kv.reserve(1, 8);
        EXPECT_GT(fx.dev->allocatedBytes(), base);
    }
    EXPECT_EQ(fx.dev->allocatedBytes(), base);
}

} // namespace
} // namespace serve
} // namespace relax
