/**
 * @file
 * Router tests: least-outstanding-tokens balancing across replicas,
 * overload shedding, per-tenant budgets, and the router.* metrics
 * contract — all on data-mode tiny engines so routed token streams can
 * be checked against a single-engine oracle.
 */
#include <gtest/gtest.h>

#include "serve/router.h"

namespace relax {
namespace serve {
namespace {

using frontend::LlamaConfig;

frontend::CompileOptions
hostOptions(int64_t vram = int64_t(8) << 30)
{
    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = vram;
    return options;
}

std::vector<std::unique_ptr<Engine>>
buildReplicas(int count, int64_t vram = int64_t(8) << 30)
{
    std::vector<std::unique_ptr<Engine>> replicas;
    for (int i = 0; i < count; ++i) {
        replicas.push_back(Engine::build(LlamaConfig::tiny(),
                                         hostOptions(vram),
                                         /*data_mode=*/true));
    }
    return replicas;
}

TEST(RouterTest, BalancesAcrossReplicasAndMatchesSingleEngineTokens)
{
    // Simultaneous arrivals must spread over both replicas (least
    // outstanding tokens alternates when charges are equal), and every
    // routed request must emit exactly what a lone engine emits for the
    // same prompt — placement cannot perturb greedy decoding.
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1}, {2, 7, 1}, {5, 9, 2, 6}, {8, 1}};
    Router router(buildReplicas(2));
    for (const auto& prompt : prompts) {
        router.submit("tenant", prompt, /*max_new_tokens=*/5,
                      /*arrival_us=*/0.0);
    }
    const RouterStats& stats = router.run();
    EXPECT_EQ(stats.submitted, (int64_t)prompts.size());
    EXPECT_EQ(stats.dispatched, (int64_t)prompts.size());
    EXPECT_EQ(stats.finished, (int64_t)prompts.size());
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.tenantRejected, 0);

    auto routed = router.collect();
    ASSERT_EQ(routed.size(), prompts.size());
    std::vector<int> per_replica(2, 0);
    for (const auto& r : routed) ++per_replica[(size_t)r.replica];
    EXPECT_EQ(per_replica[0], 2);
    EXPECT_EQ(per_replica[1], 2);
    for (int r = 0; r < 2; ++r) EXPECT_EQ(router.outstandingTokens(r), 0);

    auto oracle = Engine::build(LlamaConfig::tiny(), hostOptions(),
                                /*data_mode=*/true);
    for (const auto& prompt : prompts) oracle->addRequest(prompt, 5);
    oracle->run();
    auto expected = oracle->collect();
    for (const auto& r : routed) {
        bool matched = false;
        for (const auto& e : expected) {
            if (e.promptTokens == r.finished.promptTokens &&
                e.outputTokens == r.finished.outputTokens) {
                matched = true;
                break;
            }
        }
        EXPECT_TRUE(matched) << "routed tokens diverge from the oracle";
    }
}

TEST(RouterTest, IdleReplicaAdvancesToArrivalTime)
{
    Router router(buildReplicas(1));
    router.submit("t", {1, 2, 3}, 3, /*arrival_us=*/5000.0);
    router.run();
    auto routed = router.collect();
    ASSERT_EQ(routed.size(), 1u);
    // TTFT is measured from the arrival stamp; the idle replica was
    // advanced to it, so TTFT is just the prefill step, not 5ms.
    EXPECT_GE(routed[0].finished.stats.ttftUs(), 0.0);
    EXPECT_LT(routed[0].finished.stats.ttftUs(), 5000.0);
}

TEST(RouterTest, ShedsWhenEveryReplicaIsSaturated)
{
    // Cap each replica at one request's charge (4 prompt + 4 new = 8):
    // the first two arrivals take the two replicas, the rest shed.
    RouterOptions options;
    options.maxOutstandingTokensPerReplica = 8;
    Router router(buildReplicas(2), options);
    for (int i = 0; i < 6; ++i) {
        router.submit("t", {1, 2, 3, 4}, 4, /*arrival_us=*/0.0);
    }
    const RouterStats& stats = router.run();
    EXPECT_EQ(stats.dispatched, 2);
    EXPECT_EQ(stats.shed, 4);
    EXPECT_EQ(stats.finished, 2);
    EXPECT_EQ(router.metrics().counters().at("router.shed").value(), 4);
    // Shed requests never enter the admitted-TTFT histogram.
    EXPECT_EQ(router.metrics().histograms().at("router.ttft_us").count(),
              2);
}

TEST(RouterTest, TenantBudgetRejectsOnlyTheOverageTenant)
{
    RouterOptions options;
    options.maxTenantTokensInFlight = 16; // two in-flight requests of 8
    Router router(buildReplicas(2), options);
    for (int i = 0; i < 4; ++i) {
        router.submit("greedy", {1, 2, 3, 4}, 4, 0.0);
    }
    router.submit("modest", {5, 6, 7, 8}, 4, 0.0);
    const RouterStats& stats = router.run();
    // All five land at t=0 before anything finishes: greedy's third and
    // fourth exceed its cap, modest is untouched by greedy's overage.
    EXPECT_EQ(stats.tenantRejected, 2);
    EXPECT_EQ(stats.dispatched, 3);
    EXPECT_EQ(stats.shed, 0);
    auto routed = router.collect();
    int modest = 0;
    for (const auto& r : routed) modest += r.tenant == "modest" ? 1 : 0;
    EXPECT_EQ(modest, 1);
    EXPECT_EQ(router.tenantTokensInFlight("greedy"), 0);
}

TEST(RouterTest, MetricsMirrorStats)
{
    Router router(buildReplicas(2));
    for (int i = 0; i < 3; ++i) {
        router.submit("t", {1, 2, (int64_t)i + 1}, 3,
                      /*arrival_us=*/i * 100.0);
    }
    const RouterStats& stats = router.run();
    const auto& counters = router.metrics().counters();
    EXPECT_EQ(counters.at("router.dispatched").value(), stats.dispatched);
    EXPECT_EQ(counters.at("router.finished").value(), stats.finished);
    EXPECT_EQ(counters.count("router.shed"), 0u); // never shed => absent
    EXPECT_EQ(router.metrics()
                  .histograms()
                  .at("router.ttft_us")
                  .count(),
              stats.finished);
    EXPECT_GT(router.metrics()
                  .gauges()
                  .at("router.outstanding_tokens")
                  .samples(),
              0);
}

} // namespace
} // namespace serve
} // namespace relax
