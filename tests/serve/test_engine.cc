/**
 * @file
 * Serving-engine tests: the data-mode oracle (a continuously-batched run
 * emits exactly the tokens of N independent sequential runs), scheduler
 * edge cases (queueing beyond the VRAM budget, eviction + re-admission,
 * zero-active no-op step), sampler behavior, and timing-mode statistics.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "serve/engine.h"

namespace relax {
namespace serve {
namespace {

using frontend::LlamaConfig;

frontend::CompileOptions
hostOptions(int64_t vram = int64_t(8) << 30)
{
    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    options.device.vramBytes = vram;
    return options;
}

/**
 * Reference: the single-request greedy loop the llm_serving example used
 * to hand-roll — prefill, then decode one token at a time through the
 * same compiled executable.
 */
std::vector<int64_t>
sequentialGreedy(const LlamaConfig& config,
                 const std::vector<int64_t>& prompt, int64_t max_new)
{
    auto options = hostOptions();
    auto exec = frontend::compile(frontend::buildLlama(config), options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    vm::VirtualMachine machine(exec, dev, /*data_mode=*/true);
    auto weights = frontend::makeLlamaWeights(config, /*with_data=*/true);

    auto invoke = [&](const std::string& fn, const NDArray& ids,
                      const std::vector<NDArray>& caches) {
        std::vector<vm::Value> args{ids};
        for (const auto& c : caches) args.emplace_back(c);
        for (const auto& w : weights) args.emplace_back(w);
        return std::get<vm::TupleValuePtr>(machine.invoke(fn, args));
    };
    auto argmax_last = [](const NDArray& logits) {
        int64_t vocab = logits.shape().back();
        int64_t base = logits.numel() - vocab;
        int64_t best = 0;
        for (int64_t v = 1; v < vocab; ++v) {
            if (logits.at(base + v) > logits.at(base + best)) best = v;
        }
        return best;
    };

    std::vector<double> ids(prompt.begin(), prompt.end());
    auto state = invoke("prefill",
                        NDArray::fromVector({1, (int64_t)prompt.size()},
                                            DataType::i64(), ids),
                        {});
    std::vector<NDArray> caches;
    for (size_t i = 1; i < state->fields.size(); ++i) {
        caches.push_back(std::get<NDArray>(state->fields[i]));
    }
    std::vector<int64_t> generated;
    generated.push_back(argmax_last(std::get<NDArray>(state->fields[0])));
    while ((int64_t)generated.size() < max_new) {
        NDArray next = NDArray::fromVector({1, 1}, DataType::i64(),
                                           {(double)generated.back()});
        auto out = invoke("decode", next, caches);
        caches.clear();
        for (size_t i = 1; i < out->fields.size(); ++i) {
            caches.push_back(std::get<NDArray>(out->fields[i]));
        }
        generated.push_back(argmax_last(std::get<NDArray>(out->fields[0])));
    }
    return generated;
}

TEST(EngineTest, BatchedRunMatchesSequentialRuns)
{
    // The oracle: three concurrent requests with different prompt
    // lengths produce token-for-token what three independent
    // single-request loops produce.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1}, {2, 7}, {5, 9, 2}};
    const int64_t max_new = 6;

    auto engine = Engine::build(config, hostOptions(), /*data_mode=*/true);
    for (const auto& prompt : prompts) {
        engine->addRequest(prompt, max_new);
    }
    engine->run();
    auto results = engine->collect();
    ASSERT_EQ(results.size(), prompts.size());
    for (size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(results[i].outputTokens,
                  sequentialGreedy(config, prompts[i], max_new))
            << "request " << i;
    }
}

/** Host options with execution graphs + the static-plan bounds capture
 *  needs, for replay-on engine runs. */
frontend::CompileOptions
graphHostOptions()
{
    frontend::CompileOptions options = hostOptions();
    options.device.supportsExecutionGraphs = true;
    options.bounds = {{"b", 8}, {"n", 32}, {"m", 48}};
    return options;
}

TEST(EngineTest, RaggedDecodeTokenIdenticalWithReplayOnAndOff)
{
    // The ragged-decode data-mode oracle: staggered prompt lengths put
    // every sequence at a different context length, yet the single padded
    // decode_ragged call per step must emit token-for-token what
    // independent per-sequence sequential loops emit — with bucketed
    // graph replay capturing/replaying and with graph offload disabled.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1, 5, 9, 2}, {2, 7}, {6, 1, 8, 3, 1}};
    const int64_t max_new = 6;
    std::vector<std::vector<int64_t>> expected;
    for (const auto& prompt : prompts) {
        expected.push_back(sequentialGreedy(config, prompt, max_new));
    }

    for (bool with_graphs : {true, false}) {
        frontend::CompileOptions copts =
            with_graphs ? graphHostOptions() : hostOptions();
        EngineOptions options;
        options.kvBlockTokens = 4;
        auto engine = Engine::build(config, copts, /*data_mode=*/true,
                                    options);
        for (const auto& prompt : prompts) {
            engine->addRequest(prompt, max_new);
        }
        const EngineStats& stats = engine->run();
        // One ragged decode call per step covers the whole batch, and
        // the page-pool path never copies cache bytes on the host.
        EXPECT_EQ(stats.decodeBatches, stats.steps)
            << "graphs=" << with_graphs;
        EXPECT_EQ(stats.relayoutBytes, 0) << "graphs=" << with_graphs;
        if (with_graphs) {
            EXPECT_GT(engine->machine().graphStats().replays, 0);
        } else {
            EXPECT_EQ(engine->machine().graphStats().begins, 0);
        }
        auto results = engine->collect();
        ASSERT_EQ(results.size(), prompts.size());
        for (size_t i = 0; i < prompts.size(); ++i) {
            EXPECT_EQ(results[i].outputTokens, expected[i])
                << "request " << i << " graphs=" << with_graphs;
        }
    }
}

TEST(EngineTest, RaggedDecodeIssuesOneCallPerStepAcrossContexts)
{
    // Three context lengths that never align: the pool-addressed ragged
    // decode still covers the whole batch in exactly one call per step
    // (the grouped per-context path this replaced issued ~3).
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {
        {1, 2}, {3, 4, 5, 6, 7}, {8, 9, 1, 2, 3, 4, 5, 6, 7}};
    const int64_t max_new = 5;

    auto engine = Engine::build(config, hostOptions(),
                                /*data_mode=*/true);
    for (const auto& prompt : prompts) {
        engine->addRequest(prompt, max_new);
    }
    const EngineStats& stats = engine->run();
    EXPECT_EQ(stats.decodeBatches, stats.steps);
    EXPECT_EQ(stats.relayoutBytes, 0);
    EXPECT_EQ(engine->collect().size(), prompts.size());
}

TEST(EngineTest, DuplicatePromptPrefixSharesPagesAutomatically)
{
    // A shared-system-prompt scenario with NO hint from the caller: the
    // parent runs with a long prompt; later requests repeat its prefix
    // and extend with their own suffixes. The KV manager's block-hash
    // index must detect the duplicates at admission and map them onto
    // the parent's committed pages. Token streams must match independent
    // solo runs exactly, and peak page usage must beat a baseline whose
    // prompts have the same lengths but distinct prefix content (which
    // must NOT match anything).
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<int64_t> prefix = {3, 1, 4, 1, 5, 9};
    std::vector<int64_t> child_a = prefix, child_b = prefix;
    child_a.insert(child_a.end(), {2, 6});
    child_b.insert(child_b.end(), {8, 2, 7});
    const int64_t max_new = 6;

    auto run = [&](bool duplicate_prefix) {
        EngineOptions options;
        options.kvBlockTokens = 4;
        auto engine = Engine::build(config, hostOptions(),
                                    /*data_mode=*/true, options);
        auto variant = [&](std::vector<int64_t> prompt, int64_t salt) {
            // The baseline de-duplicates content: a distinct first
            // token per request breaks every chained block hash.
            if (!duplicate_prefix) prompt[0] = 10 + salt;
            return prompt;
        };
        engine->addRequest(variant(prefix, 0), max_new);
        // Parent prefills first so its prefix pages are committed (and
        // registered in the hash index) when the children arrive.
        engine->step();
        engine->addRequest(variant(child_a, 1), max_new);
        engine->addRequest(variant(child_b, 2), max_new);
        engine->run();
        struct Result
        {
            std::vector<std::vector<int64_t>> tokens;
            std::vector<std::vector<int64_t>> prompts;
            int64_t peakPages, forks, prefixHits, matched, relayout;
        } result;
        result.peakPages = engine->kv().peakPages();
        result.forks = engine->kv().forkCount();
        result.prefixHits = engine->kv().prefixHits();
        result.matched = engine->kv().prefixTokensMatched();
        result.relayout = engine->stats().relayoutBytes;
        for (const auto& done : engine->collect()) {
            result.tokens.push_back(done.outputTokens);
            result.prompts.push_back(done.promptTokens);
        }
        return result;
    };

    auto shared = run(true);
    auto distinct = run(false);
    ASSERT_EQ(shared.tokens.size(), 3u);
    // Byte-exact token streams vs solo references: automatic prefix
    // sharing changes memory addressing only, never values.
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(shared.tokens[i],
                  sequentialGreedy(config, shared.prompts[i], max_new))
            << "request " << i;
        EXPECT_EQ(distinct.tokens[i],
                  sequentialGreedy(config, distinct.prompts[i], max_new))
            << "baseline request " << i;
    }
    // Both children matched the parent's first committed block (the
    // 6-token prefix commits one full 4-token page).
    EXPECT_EQ(shared.forks, 2);
    EXPECT_EQ(shared.prefixHits, 2);
    EXPECT_EQ(shared.matched, 8);
    EXPECT_EQ(distinct.forks, 0);
    EXPECT_EQ(distinct.prefixHits, 0);
    EXPECT_LT(shared.peakPages, distinct.peakPages);
    EXPECT_EQ(shared.relayout, 0);
    EXPECT_EQ(distinct.relayout, 0);
}

TEST(EngineTest, EqualLengthRequestsShareDecodeBatches)
{
    // Two prompts admitted together ride in one packed call per step:
    // the first step prefills both rows (and samples their first
    // tokens), the remaining four steps decode both rows at once.
    LlamaConfig config = LlamaConfig::tiny();
    auto engine = Engine::build(config, hostOptions(), true);
    engine->addRequest({1, 2, 3}, 5);
    engine->addRequest({4, 5, 6}, 5);
    const EngineStats& stats = engine->run();
    EXPECT_EQ(stats.tokensGenerated, 10);
    EXPECT_EQ(stats.prefillBatches, 1); // one packed step held prefills
    EXPECT_EQ(stats.decodeBatches, 5);  // == steps: 1 mixed + 4 decode
    EXPECT_EQ(stats.decodeBatches, stats.steps);
}

TEST(EngineTest, AdmitBeyondBudgetQueuesInsteadOfCrashing)
{
    LlamaConfig config = LlamaConfig::tiny();
    EngineOptions options;
    options.kvBlockTokens = 4;
    // Room for exactly one 16-token prompt (4 blocks a 64*4 bytes).
    options.kvBudgetBytes = 64 * 4 * 4;
    auto engine = Engine::build(config, hostOptions(), true, options);

    std::vector<int64_t> prompt(16, 1);
    for (int i = 0; i < 3; ++i) engine->addRequest(prompt, 1);
    const EngineStats& stats = engine->run(); // must not throw
    EXPECT_EQ(stats.requestsFinished, 3);
    EXPECT_LE(stats.peakKvBytes, options.kvBudgetBytes);
    EXPECT_EQ(stats.evictions, 0);
    // Requests ran one at a time: three separate prefill calls.
    EXPECT_EQ(stats.prefillBatches, 3);
}

TEST(EngineTest, EvictionAndReadmissionPreserveTokens)
{
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {{3, 1, 4, 1},
                                                 {2, 7, 1, 8}};
    const int64_t max_new = 8;

    EngineOptions options;
    options.kvBlockTokens = 4;
    // 5 blocks: both prompts admit (1 block each), but growing both to
    // their final 11 positions needs 6 — the engine must evict one and
    // re-admit it after the other finishes.
    options.kvBudgetBytes = 64 * 4 * 5;
    auto engine = Engine::build(config, hostOptions(), true, options);
    for (const auto& prompt : prompts) engine->addRequest(prompt, max_new);
    const EngineStats& stats = engine->run();
    EXPECT_GE(stats.evictions, 1);
    EXPECT_LE(stats.peakKvBytes, options.kvBudgetBytes);

    auto results = engine->collect();
    ASSERT_EQ(results.size(), 2u);
    int64_t preempted = 0;
    for (size_t i = 0; i < prompts.size(); ++i) {
        EXPECT_EQ(results[i].outputTokens,
                  sequentialGreedy(config, prompts[i], max_new))
            << "request " << i;
        preempted += results[i].stats.preemptions;
    }
    EXPECT_GE(preempted, 1);
}

TEST(EngineTest, TtftHistogramMeasuresFromOriginalArrivalAcrossEviction)
{
    // The blind-spot regression: a request admitted and then evicted
    // BEFORE its first token (the engine evicts the most recently
    // admitted victim, which can be a row admitted earlier in the same
    // step) must contribute a TTFT measured from its ORIGINAL arrival
    // stamp — covering the whole eviction + re-admission wait — to the
    // serve.ttft_us histogram. Rebasing arrivalUs at re-admission would
    // shrink it to one step and fail the assertions below.
    LlamaConfig config = LlamaConfig::tiny();
    EngineOptions options;
    options.kvBlockTokens = 4;
    // 3 blocks. A's prompt takes 2 and its growth needs all 3, so when
    // B (1 block) admits, A's next decode position evicts it again.
    options.kvBudgetBytes = 64 * 4 * 3;
    auto engine = Engine::build(config, hostOptions(), /*data_mode=*/true,
                                options);

    std::vector<int64_t> prompt_a(8, 1);
    engine->addRequest(prompt_a, /*max_new_tokens=*/4);
    ASSERT_TRUE(engine->step()); // A prefills; its first token is out
    engine->addRequest({2, 7, 1, 8}, /*max_new_tokens=*/2);
    ASSERT_TRUE(engine->step()); // B admits, then A's growth evicts it
    const EngineStats& stats = engine->run();

    EXPECT_GE(stats.evictions, 1);
    auto results = engine->collect();
    ASSERT_EQ(results.size(), 2u);
    const RequestStats& a = results[0].stats;
    const RequestStats& b = results[1].stats;
    EXPECT_EQ(b.preemptions, 1);
    // Evicted before ever prefilling: B's one and only prefill happens
    // after re-admission (a post-first-token eviction would re-prefill
    // and double this).
    EXPECT_EQ(b.prefillTokens, 4);
    // B's first token comes after A's whole run...
    EXPECT_GE(b.firstTokenUs, a.finishUs);
    // ...and its TTFT spans the full wait from the original arrival.
    EXPECT_GE(b.ttftUs(), a.finishUs - b.arrivalUs);

    const Histogram& ttft = engine->metrics().histogram("serve.ttft_us");
    EXPECT_EQ(ttft.count(), stats.requestsFinished);
    EXPECT_DOUBLE_EQ(ttft.max(), std::max(a.ttftUs(), b.ttftUs()));
    EXPECT_DOUBLE_EQ(ttft.max(), b.ttftUs()); // B waited longest
    // One inter-token gap per token after the first, eviction or not.
    const Histogram& itl = engine->metrics().histogram("serve.itl_us");
    EXPECT_EQ(itl.count(),
              stats.tokensGenerated - stats.requestsFinished);
    EXPECT_GT(itl.count(), 0);
}

TEST(EngineTest, DuplicateOfReleasedPrefixPrefillsInFull)
{
    // Sharing is best-effort: when the request holding a prefix has
    // finished and released its pages, the hash index forgets them, so
    // a later duplicate simply prefills in full — and still emits the
    // exact token stream.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<int64_t> prefix = {3, 1, 4, 1, 5, 9};
    std::vector<int64_t> child = prefix;
    child.push_back(7);
    EngineOptions options;
    options.kvBlockTokens = 4; // the 6-token prefix commits a full page
    auto engine = Engine::build(config, hostOptions(), /*data_mode=*/true,
                                options);
    engine->addRequest(prefix, 2);
    engine->run();
    EXPECT_EQ(engine->collect().size(), 1u); // twin gone from the engine
    EXPECT_EQ(engine->kv().indexedBlocks(), 0); // release de-indexed
    engine->addRequest(child, 4);
    engine->run();
    auto results = engine->collect();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outputTokens, sequentialGreedy(config, child, 4));
    EXPECT_EQ(engine->kv().forkCount(), 0);
    EXPECT_EQ(engine->kv().prefixHits(), 0);
}

TEST(EngineTest, OverlongPromptRejectedAtSubmission)
{
    // The pool is sized to the context window; an over-long prompt is
    // rejected up front instead of stalling admission forever.
    LlamaConfig config = LlamaConfig::tiny(); // maxContext = 64
    auto engine = Engine::build(config, hostOptions(), /*data_mode=*/true);
    EXPECT_THROW(engine->addRequest(std::vector<int64_t>(65, 1), 1),
                 RuntimeError);
    engine->addRequest(std::vector<int64_t>(64, 1), 1); // exactly fits
    engine->run();
    EXPECT_EQ(engine->collect().size(), 1u);
}

TEST(EngineTest, ZeroActiveStepIsNoOp)
{
    LlamaConfig config = LlamaConfig::tiny();
    auto engine = Engine::build(config, hostOptions(), true);
    double clock = engine->machine().dev().clockUs();
    EXPECT_FALSE(engine->step());
    EXPECT_EQ(engine->machine().dev().clockUs(), clock);
    EXPECT_EQ(engine->stats().steps, 0);
    EXPECT_FALSE(engine->hasPendingWork());
    EXPECT_TRUE(engine->collect().empty());
}

TEST(EngineTest, RunThrowsWhenARequestCanNeverFit)
{
    LlamaConfig config = LlamaConfig::tiny();
    EngineOptions options;
    options.kvBlockTokens = 4;
    options.kvBudgetBytes = 64 * 4; // one block: 4 positions
    auto engine = Engine::build(config, hostOptions(), true, options);
    engine->addRequest(std::vector<int64_t>(16, 1), 1); // needs 4 blocks
    EXPECT_THROW(engine->run(), RuntimeError);
}

TEST(EngineTest, StopTokenEndsGenerationEarly)
{
    LlamaConfig config = LlamaConfig::tiny();
    auto engine = Engine::build(config, hostOptions(), true);
    std::vector<int64_t> reference =
        sequentialGreedy(config, {3, 1, 4, 1}, 6);
    // Stop on the second token the model will emit.
    engine->addRequest({3, 1, 4, 1}, 100, /*stop_token=*/reference[1]);
    engine->run();
    auto results = engine->collect();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].outputTokens.size(), 2u);
    EXPECT_EQ(results[0].outputTokens.back(), reference[1]);
}

TEST(EngineTest, LatencyStatsArePopulated)
{
    LlamaConfig config = LlamaConfig::tiny();
    auto engine = Engine::build(config, hostOptions(), true);
    engine->addRequest({1, 2, 3, 4}, 4);
    engine->addRequest({5, 6}, 4);
    const EngineStats& stats = engine->run();
    EXPECT_GT(stats.busyUs, 0.0);
    EXPECT_GT(stats.tokensPerSec(), 0.0);
    EXPECT_GT(stats.meanTtftUs(), 0.0);
    EXPECT_GT(stats.peakKvBytes, 0);
    for (const auto& done : engine->collect()) {
        EXPECT_GT(done.stats.ttftUs(), 0.0);
        EXPECT_GE(done.stats.finishUs, done.stats.firstTokenUs);
        EXPECT_EQ(done.stats.generatedTokens, 4);
        EXPECT_GT(done.stats.meanInterTokenUs(), 0.0);
    }
}

TEST(EngineTest, TimingModeServesMetadataOnly)
{
    // The throughput-benchmark path: no tensor data, synthetic sampling,
    // stats measured on the simulated device clock.
    LlamaConfig config = LlamaConfig::tiny();
    auto engine = Engine::build(config, hostOptions(), /*data_mode=*/false);
    engine->addRequest(std::vector<int64_t>(8, 1), 5);
    engine->addRequest(std::vector<int64_t>(4, 1), 5);
    const EngineStats& stats = engine->run();
    EXPECT_EQ(stats.requestsFinished, 2);
    EXPECT_EQ(stats.tokensGenerated, 10);
    EXPECT_GT(stats.busyUs, 0.0);
    EXPECT_GT(stats.peakKvBytes, 0);
    for (const auto& done : engine->collect()) {
        EXPECT_EQ((int64_t)done.outputTokens.size(), 5);
        for (int64_t token : done.outputTokens) {
            EXPECT_GE(token, 0);
            EXPECT_LT(token, config.vocabSize);
        }
    }
}

TEST(EngineTest, SamplerGreedyMatchesArgmaxAndTopKIsSeeded)
{
    NDArray logits = NDArray::fromVector(
        {1, 1, 5}, DataType::f32(), {0.1, 2.0, 0.3, 1.5, -1.0});
    Sampler greedy;
    EXPECT_EQ(greedy.sample(logits, 0), 1);

    SamplerOptions topk;
    topk.topK = 3;
    topk.seed = 11;
    Sampler a(topk), b(topk);
    for (int i = 0; i < 16; ++i) {
        int64_t token = a.sample(logits, 0);
        EXPECT_EQ(token, b.sample(logits, 0)) << "draw " << i;
        // Only the top-3 logits {1, 3, 2} are reachable.
        EXPECT_TRUE(token == 1 || token == 3 || token == 2);
    }
    Sampler synthetic;
    for (int i = 0; i < 16; ++i) {
        int64_t token = synthetic.sampleSynthetic(32);
        EXPECT_GE(token, 0);
        EXPECT_LT(token, 32);
    }
}

TEST(EngineTest, ShortestPromptFirstImprovesShortRequestTtft)
{
    // With one batch slot, FCFS serves the long prompt first; SPF lets
    // the short request jump ahead and finish sooner.
    LlamaConfig config = LlamaConfig::tiny();
    auto ttft_of_short = [&](SchedulePolicy policy) {
        EngineOptions options;
        options.scheduler.policy = policy;
        options.scheduler.maxBatchSize = 1;
        auto engine = Engine::build(config, hostOptions(), true, options);
        engine->addRequest(std::vector<int64_t>(12, 1), 4); // id 0: long
        RequestId short_id =
            engine->addRequest(std::vector<int64_t>(2, 1), 4);
        engine->run();
        for (const auto& done : engine->collect()) {
            if (done.id == short_id) return done.stats.ttftUs();
        }
        return -1.0;
    };
    double fcfs = ttft_of_short(SchedulePolicy::kFCFS);
    double spf = ttft_of_short(SchedulePolicy::kShortestPromptFirst);
    ASSERT_GT(fcfs, 0.0);
    ASSERT_GT(spf, 0.0);
    EXPECT_LT(spf, fcfs);
}

TEST(SamplerSpecTest, TopKTieBreakIsStable)
{
    // Tied logits must select candidates by (logit desc, token id asc).
    // Before the fix the partial_sort comparator ignored ties, so the
    // sampled support depended on heap internals — two platforms (or two
    // libstdc++ versions) could emit different tokens from one seed.
    SamplerOptions two;
    two.topK = 2;
    Sampler sampler(two);
    NDArray logits = NDArray::fromVector(
        {1, 1, 6}, DataType::f32(), {0.5, 2.0, 2.0, 2.0, 2.0, 1.0});
    TokenProbs probs = sampler.topKProbs(logits, 0);
    ASSERT_EQ(probs.tokens, (std::vector<int64_t>{1, 2}));
    // Equal logits carry equal renormalized mass.
    ASSERT_EQ(probs.probs.size(), 2u);
    EXPECT_NEAR(probs.probs[0], 0.5, 1e-9);
    EXPECT_NEAR(probs.probs[1], 0.5, 1e-9);
    EXPECT_NEAR(probs.probOf(1) + probs.probOf(2), 1.0, 1e-9);
    EXPECT_EQ(probs.probOf(3), 0.0); // tied but outside the stable top-2
    for (int i = 0; i < 64; ++i) {
        int64_t token = sampler.samplePacked(logits, 0);
        EXPECT_TRUE(token == 1 || token == 2) << "draw " << i;
    }
}

TEST(SamplerSpecTest, AcceptDraftsGreedyTakesLongestMatchingPrefix)
{
    // Packed target logits for k=2: positions 0 and 1 verify the drafts,
    // position 2 is the bonus. Argmaxes per position: 3, 1, 2.
    Sampler greedy;
    NDArray logits = NDArray::fromVector(
        {1, 3, 4}, DataType::f32(),
        {0, 1, 2, 9, /**/ 0, 9, 1, 2, /**/ 0, 1, 9, 2});
    SpecAcceptance all = greedy.acceptDrafts(logits, 0, {3, 1}, {});
    EXPECT_EQ(all.accepted, 2);
    EXPECT_EQ(all.next, 2); // bonus token from the extra position
    SpecAcceptance none = greedy.acceptDrafts(logits, 0, {0, 1}, {});
    EXPECT_EQ(none.accepted, 0);
    EXPECT_EQ(none.next, 3); // the target's own argmax replaces it
    SpecAcceptance one = greedy.acceptDrafts(logits, 0, {3, 0}, {});
    EXPECT_EQ(one.accepted, 1);
    EXPECT_EQ(one.next, 1);
}

TEST(SamplerSpecTest, AcceptDraftsRejectionSamplingRatio)
{
    // Top-k acceptance is p(x)/q(x) rejection sampling. Two analytic
    // corners pin it without statistics: q == p accepts every draft
    // (ratio 1 beats any uniform draw), and a draft from outside the
    // target's support is always rejected (ratio 0), with the
    // replacement resampled from the residual max(p - q, 0) — here p
    // itself, since the supports are disjoint.
    SamplerOptions two;
    two.topK = 2;
    Sampler sampler(two);
    // Every packed position: target top-2 = tokens {2, 3}.
    std::vector<double> row = {0, 0, 5, 4};
    std::vector<double> packed;
    for (int i = 0; i < 3; ++i) {
        packed.insert(packed.end(), row.begin(), row.end());
    }
    NDArray logits =
        NDArray::fromVector({1, 3, 4}, DataType::f32(), packed);

    TokenProbs q_same = sampler.topKProbs(logits, 0);
    std::vector<TokenProbs> same = {q_same, q_same};
    for (int trial = 0; trial < 32; ++trial) {
        SpecAcceptance acc = sampler.acceptDrafts(logits, 0, {2, 3}, same);
        EXPECT_EQ(acc.accepted, 2) << "trial " << trial;
        EXPECT_TRUE(acc.next == 2 || acc.next == 3); // bonus from p
    }

    TokenProbs q_disjoint;
    q_disjoint.tokens = {0, 1};
    q_disjoint.probs = {0.5, 0.5};
    std::vector<TokenProbs> disjoint = {q_disjoint, q_disjoint};
    for (int trial = 0; trial < 32; ++trial) {
        SpecAcceptance acc =
            sampler.acceptDrafts(logits, 0, {0, 1}, disjoint);
        EXPECT_EQ(acc.accepted, 0) << "trial " << trial;
        EXPECT_TRUE(acc.next == 2 || acc.next == 3); // residual == p
    }
}

TEST(EngineSpecTest, SpeculativeDecodeMatchesSequentialGreedy)
{
    // THE speculation invariant: propose-k/verify/accept-prefix may not
    // change a single token relative to plain decoding. An identical
    // draft (same config, same weight seed) agrees with the target at
    // every position, so this run exercises the all-accept + bonus path
    // and must convert accepted prefixes into real step savings.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1}, {2, 7}, {5, 9, 2, 6, 5}};
    const int64_t max_new = 8;
    std::vector<std::vector<int64_t>> expected;
    for (const auto& prompt : prompts) {
        expected.push_back(sequentialGreedy(config, prompt, max_new));
    }

    int64_t baseline_steps = 0;
    {
        auto engine = Engine::build(config, hostOptions(), true);
        for (const auto& prompt : prompts) {
            engine->addRequest(prompt, max_new);
        }
        baseline_steps = engine->run().steps;
    }

    for (int64_t k : {2, 4}) {
        EngineOptions options;
        options.speculation.draftTokens = k;
        options.speculation.draftConfig = config; // identical draft
        auto engine = Engine::build(config, hostOptions(), true, options);
        ASSERT_TRUE(engine->speculationEnabled());
        for (const auto& prompt : prompts) {
            engine->addRequest(prompt, max_new);
        }
        const EngineStats& stats = engine->run();
        auto results = engine->collect();
        ASSERT_EQ(results.size(), prompts.size()) << "k=" << k;
        for (size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].outputTokens, expected[i])
                << "k=" << k << " request " << i;
        }
        // The target still issues ONE packed call per step; the draft's
        // calls are tallied separately.
        EXPECT_EQ(stats.decodeBatches, stats.steps) << "k=" << k;
        EXPECT_EQ(stats.relayoutBytes, 0) << "k=" << k;
        EXPECT_GT(stats.draftCalls, 0) << "k=" << k;
        EXPECT_GT(stats.specProposed, 0) << "k=" << k;
        EXPECT_GT(stats.specAcceptanceRate(), 0.9) << "k=" << k;
        EXPECT_LT(stats.steps, baseline_steps) << "k=" << k;
    }
}

TEST(EngineSpecTest, MismatchedDraftStaysExactAndRollsBack)
{
    // A draft with different weights disagrees with the target most of
    // the time: every rejected token must be rolled back — KV rewound
    // via truncate, outputs still token-identical to plain decoding.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<std::vector<int64_t>> prompts = {
        {3, 1, 4, 1}, {2, 7, 1, 8, 2, 8}, {6, 1}};
    const int64_t max_new = 8;

    EngineOptions options;
    options.kvBlockTokens = 4;
    options.speculation.draftTokens = 3;
    options.speculation.draftConfig = config;
    options.speculation.draftWeightSeed = 11; // disagrees with target
    auto engine = Engine::build(config, hostOptions(), true, options);
    for (const auto& prompt : prompts) {
        engine->addRequest(prompt, max_new);
    }
    const EngineStats& stats = engine->run();
    auto results = engine->collect();
    ASSERT_EQ(results.size(), prompts.size());
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].outputTokens,
                  sequentialGreedy(config, prompts[i], max_new))
            << "request " << i;
    }
    EXPECT_EQ(stats.decodeBatches, stats.steps);
    EXPECT_GT(stats.specProposed, 0);
    EXPECT_LT(stats.specAccepted, stats.specProposed);
    // Rejections rewound the draft pool past its committed frontier.
    ASSERT_NE(engine->draftKv(), nullptr);
    EXPECT_GT(engine->draftKv()->truncateCount(), 0);
    // Metrics mirror the speculation tallies.
    EXPECT_EQ(engine->metrics().counter("serve.spec_proposed_tokens").value(),
              stats.specProposed);
    EXPECT_EQ(engine->metrics().counter("serve.spec_accepted_tokens").value(),
              stats.specAccepted);
    EXPECT_EQ(engine->metrics().counter("serve.draft_calls").value(),
              stats.draftCalls);
    EXPECT_EQ(engine->metrics().counter("kv.truncates").value(),
              engine->kv().truncateCount() +
                  engine->draftKv()->truncateCount());
}

TEST(EngineSpecTest, PrefixSharedSiblingSurvivesSiblingRejections)
{
    // A prefix-cache fork shares pool pages between two requests while
    // one of them keeps proposing (and mostly rejecting) draft tokens.
    // Rollback must stay private: the sharer's stream and the rejecter's
    // stream both match their sequential oracles exactly.
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<int64_t> parent = {3, 1, 4, 1, 5, 9, 2, 6, 5};
    std::vector<int64_t> child = parent;
    child.push_back(8);
    const int64_t max_new = 6;

    EngineOptions options;
    options.kvBlockTokens = 4;
    options.speculation.draftTokens = 3;
    options.speculation.draftConfig = config;
    options.speculation.draftWeightSeed = 11;
    auto engine = Engine::build(config, hostOptions(), true, options);
    engine->addRequest(parent, max_new);
    engine->step(); // parent prefills and registers its full blocks
    engine->addRequest(child, max_new);
    engine->run();

    auto results = engine->collect();
    ASSERT_EQ(results.size(), 2u);
    std::sort(results.begin(), results.end(),
              [](const FinishedRequest& a, const FinishedRequest& b) {
                  return a.id < b.id;
              });
    EXPECT_EQ(results[0].outputTokens,
              sequentialGreedy(config, parent, max_new));
    EXPECT_EQ(results[1].outputTokens,
              sequentialGreedy(config, child, max_new));
    // The child really did share the parent's pages (no fork hint), and
    // speculation really did reject and roll back next to it.
    EXPECT_GE(engine->kv().prefixHits(), 1);
    EXPECT_GE(engine->kv().forkCount(), 1);
    EXPECT_GT(engine->stats().specProposed, engine->stats().specAccepted);
    EXPECT_GT(engine->draftKv()->truncateCount(), 0);
}

TEST(EngineSpecTest, TimingModeSyntheticAcceptanceSpeedsDecode)
{
    // The bench path: no logits, acceptance simulated per draft position
    // as Bernoulli(rate). High acceptance must beat k=0 on generated
    // tokens per unit of virtual clock; rate 0 degenerates to k=0-like
    // progress while still paying the draft, and every mode preserves
    // decodeBatches == steps.
    LlamaConfig config = LlamaConfig::tiny();
    auto run_with = [&](int64_t k, double rate) {
        EngineOptions options;
        options.speculation.draftTokens = k;
        options.speculation.draftConfig = config;
        options.speculation.syntheticAcceptanceRate = rate;
        auto engine =
            Engine::build(config, hostOptions(), /*data_mode=*/false,
                          options);
        for (int i = 0; i < 4; ++i) {
            engine->addRequest(std::vector<int64_t>(6, 1), 12);
        }
        EngineStats stats = engine->run();
        EXPECT_EQ(stats.decodeBatches, stats.steps)
            << "k=" << k << " rate=" << rate;
        EXPECT_EQ(stats.tokensGenerated, 4 * 12);
        return stats;
    };
    EngineStats plain = run_with(0, 0.0);
    EXPECT_EQ(plain.specProposed, 0);
    EngineStats eager = run_with(4, 1.0);
    EXPECT_GT(eager.specAcceptanceRate(), 0.99);
    EXPECT_LT(eager.steps, plain.steps);
    EngineStats hopeless = run_with(4, 0.0);
    EXPECT_EQ(hopeless.specAccepted, 0);
    EXPECT_GE(hopeless.steps, eager.steps);
}

} // namespace
} // namespace serve
} // namespace relax
