/**
 * @file
 * Scheduler tests: FCFS vs shortest-prompt-first admission order, batch
 * and prefill-budget caps, head-of-line blocking under memory pressure,
 * and eviction victim selection.
 */
#include <gtest/gtest.h>

#include "serve/scheduler.h"

namespace relax {
namespace serve {
namespace {

struct Fixture
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    std::shared_ptr<device::SimDevice> dev;
    vm::VirtualMachine machine;

    Fixture()
        : dev(std::make_shared<device::SimDevice>([] {
              device::DeviceSpec spec;
              spec.name = "host";
              spec.backend = "cpu";
              return spec;
          }())),
          machine(std::make_shared<vm::Executable>(), dev, true)
    {
    }

    KVCacheManager
    kvWithBlocks(int64_t blocks)
    {
        // tiny config: 64 bytes/token, 4-token blocks.
        return KVCacheManager(config, machine, 64 * 4 * blocks, 4);
    }

    static SequenceStatePtr
    seq(RequestId id, int64_t prompt_len)
    {
        auto state = std::make_shared<SequenceState>();
        state->request.id = id;
        state->request.promptTokens.assign(prompt_len, 1);
        return state;
    }
};

TEST(SchedulerTest, FCFSAdmitsInArrivalOrder)
{
    Fixture fx;
    KVCacheManager kv = fx.kvWithBlocks(100);
    Scheduler scheduler;
    scheduler.enqueue(Fixture::seq(0, 8));
    scheduler.enqueue(Fixture::seq(1, 2));
    scheduler.enqueue(Fixture::seq(2, 4));

    auto admitted = scheduler.admit(kv, /*runningCount=*/0);
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0]->request.id, 0);
    EXPECT_EQ(admitted[1]->request.id, 1);
    EXPECT_EQ(admitted[2]->request.id, 2);
    for (const auto& s : admitted) {
        EXPECT_EQ(s->phase, RequestPhase::kRunning);
        EXPECT_GT(kv.reservedTokens(s->request.id), 0);
    }
    EXPECT_FALSE(scheduler.hasWaiting());
}

TEST(SchedulerTest, ShortestPromptFirstReorders)
{
    Fixture fx;
    KVCacheManager kv = fx.kvWithBlocks(100);
    SchedulerOptions options;
    options.policy = SchedulePolicy::kShortestPromptFirst;
    Scheduler scheduler(options);
    scheduler.enqueue(Fixture::seq(0, 8));
    scheduler.enqueue(Fixture::seq(1, 2));
    scheduler.enqueue(Fixture::seq(2, 4));

    auto admitted = scheduler.admit(kv, 0);
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0]->request.id, 1);
    EXPECT_EQ(admitted[1]->request.id, 2);
    EXPECT_EQ(admitted[2]->request.id, 0);
}

TEST(SchedulerTest, BatchSizeCapsAdmission)
{
    Fixture fx;
    KVCacheManager kv = fx.kvWithBlocks(100);
    SchedulerOptions options;
    options.maxBatchSize = 2;
    Scheduler scheduler(options);
    for (RequestId id = 0; id < 4; ++id) {
        scheduler.enqueue(Fixture::seq(id, 2));
    }
    EXPECT_EQ(scheduler.admit(kv, /*runningCount=*/1).size(), 1u);
    EXPECT_EQ(scheduler.waitingCount(), 3u);
}

TEST(SchedulerTest, MemoryPressureBlocksHeadOfLine)
{
    Fixture fx;
    KVCacheManager kv = fx.kvWithBlocks(3);
    Scheduler scheduler;
    scheduler.enqueue(Fixture::seq(0, 16)); // 4 blocks: never fits
    scheduler.enqueue(Fixture::seq(1, 2));  // would fit, but stays behind
    EXPECT_TRUE(scheduler.admit(kv, 0).empty());
    EXPECT_EQ(scheduler.waitingCount(), 2u);
}

TEST(SchedulerTest, PrefillBudgetDefersButNeverStrands)
{
    Fixture fx;
    KVCacheManager kv = fx.kvWithBlocks(100);
    SchedulerOptions options;
    options.maxPrefillTokensPerStep = 8;
    Scheduler scheduler(options);
    scheduler.enqueue(Fixture::seq(0, 6));
    scheduler.enqueue(Fixture::seq(1, 6)); // over the shared 8-token cap
    auto first = scheduler.admit(kv, 0);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0]->request.id, 0);

    // A prompt above the whole cap still admits into an idle system.
    Scheduler big(options);
    big.enqueue(Fixture::seq(2, 32));
    EXPECT_EQ(big.admit(kv, 0).size(), 1u);
}

TEST(SchedulerTest, VictimIsMostRecentlyAdmitted)
{
    auto a = Fixture::seq(0, 2);
    auto b = Fixture::seq(1, 2);
    auto c = Fixture::seq(2, 2);
    a->admitSeq = 0;
    b->admitSeq = 5;
    c->admitSeq = 3;
    EXPECT_EQ(Scheduler::pickVictim({a, b, c}), b);
    EXPECT_EQ(Scheduler::pickVictim({}), nullptr);
}

} // namespace
} // namespace serve
} // namespace relax
