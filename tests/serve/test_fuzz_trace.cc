/**
 * @file
 * Randomized serving oracle: seeded fuzz over request counts, prompt
 * lengths, max-tokens, KV budgets, mid-stream arrival steps, duplicated
 * prompt prefixes, and both admission policies, asserting that the
 * continuously-batched data-mode engine emits token-for-token what N
 * independent single-request greedy loops emit — with bucketed
 * execution-graph replay on and with it off. This pins the whole serve
 * stack (scheduler, page-pool KV manager with the automatic
 * prefix-caching hash index, eviction, and the ONE packed-varlen call
 * per step that carries prefill chunks and n=1 decode rows together) to
 * an end-to-end correctness invariant: no batching, paging, sharing,
 * preemption, or graph-replay decision may change tokens. A speculation
 * axis (k in {0, 2, 4}) rides on top: every scenario also runs with a
 * draft model proposing k tokens per row per step — alternating between
 * an identical draft (near-total acceptance: the all-accept + bonus
 * path) and a mismatched one (mostly rejections: the truncate-rollback
 * path) — and the token streams must STILL be identical. A tensor-
 * parallel axis (tp in {1, 2}) crosses both: every scenario also runs
 * sharded across a two-device group with lockstep collectives, and
 * sharding may not change a single token either. Structural
 * invariants ride along: decode calls == steps on every trace (mixed
 * prefill+decode steps never split into extra calls, and draft calls
 * are tallied separately), relayoutBytes == 0, and prompt-prefix
 * duplicates must hit the hash index with no fork hint from the driver.
 *
 * Seed count defaults to 40 (~3 s); set RELAX_FUZZ_SEEDS for the
 * scheduled soak (the cron workflow runs 2000).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>

#include "serve/engine.h"

namespace relax {
namespace serve {
namespace {

using frontend::LlamaConfig;

/** Host device that also supports execution graphs, so data-mode runs
 *  exercise bucketed capture/replay. */
device::DeviceSpec
hostSpec(bool with_graphs)
{
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(8) << 30;
    spec.supportsExecutionGraphs = with_graphs;
    return spec;
}

frontend::CompileOptions
fuzzOptions(bool with_graphs)
{
    frontend::CompileOptions options;
    options.device = hostSpec(with_graphs);
    // Envelope of every fuzzed trace: prompts <= 12, generated <= 8
    // (re-prefills cover prompt+generated <= 20), batch <= 8. The
    // packed token count n sums one step's fresh tokens: the 24-token
    // per-step prefill cap plus up to 8 speculating decode rows of
    // 1 + k <= 5 fresh tokens each (the verify window) stays under 96.
    options.bounds = {{"b", 8}, {"n", 96}, {"m", 48}};
    return options;
}

/**
 * Reference: one request at a time through its own VM — prefill, then
 * greedy decode until max_new, the stop token, or the context window.
 */
class SequentialOracle
{
  public:
    explicit SequentialOracle(const LlamaConfig& config)
        : config_(config),
          exec_(frontend::compile(frontend::buildLlama(config),
                                  fuzzOptions(false))),
          weights_(frontend::makeLlamaWeights(config, /*with_data=*/true))
    {
    }

    std::vector<int64_t>
    generate(const std::vector<int64_t>& prompt, int64_t max_new,
             int64_t stop_token)
    {
        // A fresh VM per request keeps runs fully independent.
        auto dev = std::make_shared<device::SimDevice>(hostSpec(false));
        vm::VirtualMachine machine(exec_, dev, /*data_mode=*/true);
        auto invoke = [&](const std::string& fn, const NDArray& ids,
                          const std::vector<NDArray>& caches) {
            std::vector<vm::Value> args{ids};
            for (const auto& c : caches) args.emplace_back(c);
            for (const auto& w : weights_) args.emplace_back(w);
            return std::get<vm::TupleValuePtr>(machine.invoke(fn, args));
        };
        auto argmax_last = [](const NDArray& logits) {
            int64_t vocab = logits.shape().back();
            int64_t base = logits.numel() - vocab;
            int64_t best = 0;
            for (int64_t v = 1; v < vocab; ++v) {
                if (logits.at(base + v) > logits.at(base + best)) best = v;
            }
            return best;
        };

        std::vector<double> ids(prompt.begin(), prompt.end());
        auto state = invoke("prefill",
                            NDArray::fromVector({1, (int64_t)prompt.size()},
                                                DataType::i64(), ids),
                            {});
        std::vector<NDArray> caches;
        for (size_t i = 1; i < state->fields.size(); ++i) {
            caches.push_back(std::get<NDArray>(state->fields[i]));
        }
        int64_t ctx = (int64_t)prompt.size();
        std::vector<int64_t> generated;
        generated.push_back(
            argmax_last(std::get<NDArray>(state->fields[0])));
        while ((int64_t)generated.size() < max_new &&
               generated.back() != stop_token &&
               ctx + 1 < config_.maxContext) {
            NDArray next = NDArray::fromVector(
                {1, 1}, DataType::i64(), {(double)generated.back()});
            auto out = invoke("decode", next, caches);
            caches.clear();
            for (size_t i = 1; i < out->fields.size(); ++i) {
                caches.push_back(std::get<NDArray>(out->fields[i]));
            }
            ++ctx;
            generated.push_back(
                argmax_last(std::get<NDArray>(out->fields[0])));
        }
        return generated;
    }

  private:
    LlamaConfig config_;
    vm::ExecutablePtr exec_;
    std::vector<NDArray> weights_;
};

struct FuzzRequest
{
    std::vector<int64_t> prompt;
    int64_t maxNew = 1;
    int64_t stopToken = -1;
    int64_t arrivalStep = 0; //!< engine step at which the request is added
    int64_t dupOf = -1; //!< index of the earlier request whose prompt this
                        //!< one duplicates (content only — NO engine hint;
                        //!< the hash index must detect it by itself)
};

struct FuzzScenario
{
    std::vector<FuzzRequest> requests;
    SchedulePolicy policy = SchedulePolicy::kFCFS;
    int64_t kvBlockTokens = 4;
    int64_t kvBudgetBytes = 0;
};

/** Draws one scenario; budgets always fit the largest single request so
 *  the trace can finish, but may force serialization and eviction. */
FuzzScenario
drawScenario(std::mt19937& rng, const LlamaConfig& config)
{
    auto draw = [&](int64_t lo, int64_t hi) {
        return lo + (int64_t)(rng() % (uint64_t)(hi - lo + 1));
    };
    FuzzScenario scenario;
    scenario.policy = rng() % 2 == 0 ? SchedulePolicy::kFCFS
                                     : SchedulePolicy::kShortestPromptFirst;
    scenario.kvBlockTokens = draw(2, 6);
    int64_t num_requests = draw(1, 6);
    int64_t max_need = 0;
    for (int64_t i = 0; i < num_requests; ++i) {
        FuzzRequest request;
        int64_t prompt_len = draw(1, 12);
        for (int64_t t = 0; t < prompt_len; ++t) {
            request.prompt.push_back(draw(0, config.vocabSize - 1));
        }
        request.maxNew = draw(1, 8);
        // Mid-stream arrival: requests land across the first steps of
        // the trace, so prefill chunks and running decodes coexist in
        // the same packed call.
        request.arrivalStep = draw(0, 4);
        if (rng() % 4 == 0) {
            // An occasionally-hit stop token (small vocab makes real
            // early stops likely across scenarios).
            request.stopToken = draw(0, config.vocabSize - 1);
        }
        if (i > 0 && rng() % 3 == 0) {
            // Duplicate prompt prefix: repeat an earlier request's
            // prompt and extend it with a short suffix. There is no
            // fork hint anywhere — automatic prefix caching must find
            // the shared pages itself whenever the twin's blocks are
            // still resident, and tokens must match regardless.
            request.dupOf = draw(0, i - 1);
            const FuzzRequest& twin = scenario.requests[request.dupOf];
            request.prompt = twin.prompt;
            int64_t suffix = draw(1, 4);
            for (int64_t t = 0; t < suffix; ++t) {
                request.prompt.push_back(draw(0, config.vocabSize - 1));
            }
            // Arriving after the twin's prefill makes a live match
            // possible (same-step arrivals admit before registration).
            request.arrivalStep =
                std::max(request.arrivalStep, twin.arrivalStep + 1);
        }
        max_need = std::max(max_need,
                            (int64_t)request.prompt.size() + request.maxNew);
        scenario.requests.push_back(std::move(request));
    }
    // Between "just fits the largest request" (forces serialization and
    // evictions) and twice that (mild pressure).
    int64_t blocks_needed = (max_need + scenario.kvBlockTokens - 1) /
                            scenario.kvBlockTokens;
    int64_t bytes_per_block =
        config.kvBytesPerToken() * scenario.kvBlockTokens;
    scenario.kvBudgetBytes =
        draw(blocks_needed, 2 * blocks_needed) * bytes_per_block;
    return scenario;
}

/** Seed count: 40 by default, RELAX_FUZZ_SEEDS overrides (cron soak). */
int64_t
fuzzSeedCount()
{
    const char* env = std::getenv("RELAX_FUZZ_SEEDS");
    if (!env) return 40;
    int64_t count = std::atoll(env);
    return count > 0 ? count : 40;
}

TEST(FuzzTraceTest, BatchedEngineMatchesSequentialOracle)
{
    // Instrumented differential mode for the whole corpus: every
    // in-place kernel call in every seed below runs twice — aliased and
    // copy-in/copy-out — and throws on any bit difference, so the token
    // oracle here simultaneously proves the aliasing rewrites are
    // behavior-preserving across the fuzzed serving space.
    setenv("RELAX_ALIAS_CHECK", "1", 1);
    const int64_t alias_checks_before = vm::aliasChecksPerformed();

    LlamaConfig config = LlamaConfig::tiny();
    SequentialOracle oracle(config);

    // Compile each engine variant once; scenarios share the executables.
    frontend::CompileOptions replay_on = fuzzOptions(true);
    replay_on.graphBucketTokens = 4; // bucketed capture on the serve path
    frontend::CompileOptions replay_off = fuzzOptions(false);
    auto exec_on =
        frontend::compile(frontend::buildLlama(config), replay_on);
    auto exec_off =
        frontend::compile(frontend::buildLlama(config), replay_off);
    // Tensor-parallel variants: the same model sharded 2-ways (ShardPass
    // + lockstep collectives). One executable serves both shards.
    frontend::CompileOptions replay_on_tp = replay_on;
    replay_on_tp.tensorParallel = 2;
    frontend::CompileOptions replay_off_tp = replay_off;
    replay_off_tp.tensorParallel = 2;
    auto exec_on_tp =
        frontend::compile(frontend::buildLlama(config), replay_on_tp);
    auto exec_off_tp =
        frontend::compile(frontend::buildLlama(config), replay_off_tp);
    auto weights = frontend::makeLlamaWeights(config, /*with_data=*/true);
    // Draft weights for the speculation axis. The draft reuses the same
    // tiny architecture (and compiled executable — graph keyspaces keep
    // the two VMs' captures apart), so the identical-seed draft agrees
    // with the target everywhere (all-accept) while the alternate seed
    // mostly disagrees (reject + rollback). Identity must hold either way.
    auto draft_weights_same =
        frontend::makeLlamaWeights(config, /*with_data=*/true, 7);
    auto draft_weights_alt =
        frontend::makeLlamaWeights(config, /*with_data=*/true, 11);

    int64_t total_replays = 0;
    int64_t total_evictions = 0;
    int64_t total_prefix_hits = 0, total_prefix_tokens = 0;
    int64_t mixed_step_traces = 0;
    int64_t ragged_steps = 0, ragged_decode_calls = 0;
    int64_t total_spec_proposed = 0, total_spec_accepted = 0;
    int64_t total_truncates = 0, total_draft_calls = 0;
    int64_t total_collectives = 0;
    std::mt19937 seed_rng(0xF00D);
    const int64_t seed_count = fuzzSeedCount();
    for (int64_t round = 0; round < seed_count; ++round) {
        unsigned seed = (unsigned)seed_rng();
        std::mt19937 rng(seed);
        FuzzScenario scenario = drawScenario(rng, config);
        // Requests are added in arrival order; sorting once up front
        // makes engine request ids line up with this vector's indices.
        std::stable_sort(scenario.requests.begin(), scenario.requests.end(),
                         [](const FuzzRequest& a, const FuzzRequest& b) {
                             return a.arrivalStep < b.arrivalStep;
                         });

        // One oracle pass per request; every engine variant must match it.
        std::vector<std::vector<int64_t>> expected;
        expected.reserve(scenario.requests.size());
        for (const FuzzRequest& request : scenario.requests) {
            expected.push_back(oracle.generate(
                request.prompt, request.maxNew, request.stopToken));
        }

        EngineOptions engine_options;
        engine_options.scheduler.policy = scenario.policy;
        // Cap per-step prefill so one packed call (prefills + decode
        // rows) stays inside the compiled n=32 bound.
        engine_options.scheduler.maxPrefillTokensPerStep = 24;
        engine_options.kvBlockTokens = scenario.kvBlockTokens;
        engine_options.kvBudgetBytes = scenario.kvBudgetBytes;

        for (int64_t tp : {int64_t(1), int64_t(2)})
        for (int64_t spec_k : {int64_t(0), int64_t(2), int64_t(4)})
        for (bool with_replay : {true, false}) {
            // tp=2 shards the target across a two-device group; the
            // draft (when speculating) stays single-VM on shard 0, and
            // the token streams must STILL match the tp=1 oracle —
            // sharding is invisible to scheduling and sampling.
            std::shared_ptr<device::DeviceGroup> group;
            std::shared_ptr<device::SimDevice> dev;
            if (tp == 2) {
                group = std::make_shared<device::DeviceGroup>(
                    hostSpec(with_replay), 2,
                    device::interconnectByName("nvlink"));
                dev = group->devicePtr(0);
            } else {
                dev = std::make_shared<device::SimDevice>(
                    hostSpec(with_replay));
            }
            // Tracing on for every seed: the token oracle below then
            // also pins the observation-only invariant (recording may
            // not change any token), and each trace must be well
            // nested.
            dev->trace().enable();
            EngineOptions variant_options = engine_options;
            variant_options.speculation.draftTokens = spec_k;
            variant_options.speculation.draftConfig = config;
            vm::ExecutablePtr exec =
                tp == 2 ? (with_replay ? exec_on_tp : exec_off_tp)
                        : (with_replay ? exec_on : exec_off);
            Engine engine(exec, dev, /*data_mode=*/true, config, weights,
                          variant_options, group);
            if (spec_k > 0) {
                engine.enableSpeculation(with_replay ? exec_on : exec_off,
                                         round % 2 == 0
                                             ? draft_weights_same
                                             : draft_weights_alt);
            }
            // Mid-stream arrival driver: add each request at its
            // arrival step, stepping the engine in between so fresh
            // prefills join an already-decoding batch.
            size_t next_request = 0;
            for (int64_t tick = 0;; ++tick) {
                while (next_request < scenario.requests.size() &&
                       scenario.requests[next_request].arrivalStep <= tick) {
                    const FuzzRequest& request =
                        scenario.requests[next_request];
                    engine.addRequest(request.prompt, request.maxNew,
                                      request.stopToken);
                    ++next_request;
                }
                bool progressed = engine.step();
                if (next_request == scenario.requests.size() &&
                    !engine.hasPendingWork()) {
                    break;
                }
                ASSERT_TRUE(progressed ||
                            next_request < scenario.requests.size())
                    << "stalled: seed=" << seed
                    << " replay=" << with_replay;
            }
            auto results = engine.collect();
            ASSERT_EQ(results.size(), scenario.requests.size())
                << "seed=" << seed << " replay=" << with_replay;
            // collect() orders by request id == the order added above.
            std::sort(results.begin(), results.end(),
                      [](const FinishedRequest& a, const FinishedRequest& b) {
                          return a.id < b.id;
                      });
            for (size_t i = 0; i < results.size(); ++i) {
                EXPECT_EQ(results[i].outputTokens, expected[i])
                    << "seed=" << seed << " request=" << i
                    << " replay=" << with_replay << " tp=" << tp
                    << " spec_k=" << spec_k
                    << " draft=" << (round % 2 == 0 ? "same" : "alt")
                    << " policy=" << (int)scenario.policy;
            }
            if (with_replay) {
                total_replays += engine.machine().graphStats().replays;
            } else {
                // Graph offload disabled: capture must never engage.
                EXPECT_EQ(engine.machine().graphStats().begins, 0);
            }
            total_evictions += engine.stats().evictions;
            total_prefix_hits += engine.kv().prefixHits();
            total_prefix_tokens += engine.kv().prefixTokensMatched();
            if (engine.stats().prefillBatches < engine.stats().steps &&
                engine.stats().prefillBatches > 1) {
                // More than one arrival wave and some pure-decode steps:
                // this trace genuinely mixed prefills into a running
                // batch at least once.
                ++mixed_step_traces;
            }
            // THE packed-varlen invariant: exactly one call per step,
            // even when prefill chunks and decode rows share the step —
            // the grouping loop this replaced issued up to one call per
            // distinct fresh length. And the page-pool path never
            // copies cache bytes on the host.
            EXPECT_EQ(engine.stats().decodeBatches, engine.stats().steps)
                << "seed=" << seed << " replay=" << with_replay;
            EXPECT_EQ(engine.stats().relayoutBytes, 0)
                << "seed=" << seed;
            ragged_steps += engine.stats().steps;
            ragged_decode_calls += engine.stats().decodeBatches;
            if (tp == 2) {
                // Every sharded packed call paid its collectives: two
                // all_reduces per layer plus the logits all_gather.
                EXPECT_EQ(group->collectiveCount(),
                          engine.stats().steps *
                              (2 * config.numLayers + 1))
                    << "seed=" << seed << " replay=" << with_replay;
                EXPECT_GT(group->collectiveUs(), 0.0) << "seed=" << seed;
                total_collectives += group->collectiveCount();
            }

            // Metrics cross-checks against ground truth: the registry
            // is updated at the event sites, the fields it mirrors are
            // maintained independently — any drift between the two is a
            // lost or double-counted event.
            MetricsRegistry& metrics = engine.metrics();
            EXPECT_EQ(metrics.histogram("serve.ttft_us").count(),
                      engine.stats().requestsFinished)
                << "seed=" << seed << " replay=" << with_replay;
            EXPECT_EQ(metrics.histogram("serve.itl_us").count(),
                      engine.stats().tokensGenerated -
                          engine.stats().requestsFinished)
                << "seed=" << seed << " replay=" << with_replay;
            EXPECT_EQ(metrics.counter("serve.evictions").value(),
                      engine.stats().evictions)
                << "seed=" << seed;
            EXPECT_EQ(metrics.counter("serve.requests_finished").value(),
                      engine.stats().requestsFinished)
                << "seed=" << seed;
            EXPECT_EQ(metrics.counter("serve.steps").value(),
                      engine.stats().steps)
                << "seed=" << seed;
            EXPECT_EQ(metrics.counter("kv.cow_copies").value(),
                      engine.kv().cowCopies())
                << "seed=" << seed;
            EXPECT_EQ(metrics.counter("kv.prefix_hits").value(),
                      engine.kv().prefixHits())
                << "seed=" << seed;
            EXPECT_EQ(metrics.counter("kv.prefix_tokens_matched").value(),
                      engine.kv().prefixTokensMatched())
                << "seed=" << seed;
            if (spec_k > 0) {
                // Speculation tallies mirror the stats fields, and the
                // truncate counter covers both pools (the draft rewinds
                // on every rejection; the target returns surplus pages).
                EXPECT_EQ(
                    metrics.counter("serve.spec_proposed_tokens").value(),
                    engine.stats().specProposed)
                    << "seed=" << seed;
                EXPECT_EQ(
                    metrics.counter("serve.spec_accepted_tokens").value(),
                    engine.stats().specAccepted)
                    << "seed=" << seed;
                EXPECT_EQ(metrics.counter("serve.draft_calls").value(),
                          engine.stats().draftCalls)
                    << "seed=" << seed;
                ASSERT_NE(engine.draftKv(), nullptr);
                EXPECT_EQ(metrics.counter("kv.truncates").value(),
                          engine.kv().truncateCount() +
                              engine.draftKv()->truncateCount())
                    << "seed=" << seed;
                total_spec_proposed += engine.stats().specProposed;
                total_spec_accepted += engine.stats().specAccepted;
                total_draft_calls += engine.stats().draftCalls;
                total_truncates += engine.kv().truncateCount() +
                                   engine.draftKv()->truncateCount();
            } else {
                // Speculation off must leave no trace at all.
                EXPECT_EQ(engine.stats().specProposed, 0);
                EXPECT_EQ(engine.stats().draftCalls, 0);
                EXPECT_EQ(engine.kv().truncateCount(), 0);
            }

            // Structural trace invariant: per-lane 'X' spans nest.
            std::string nest_error;
            EXPECT_TRUE(dev->trace().wellNested(&nest_error))
                << "seed=" << seed << " replay=" << with_replay << ": "
                << nest_error;
            EXPECT_FALSE(dev->trace().events().empty())
                << "seed=" << seed;
        }
    }
    // The fuzz must actually exercise the interesting machinery: some
    // scenario replayed a bucketed graph, some scenario evicted, some
    // trace mixed prefill and decode rows in one step, and automatic
    // prefix caching detected duplicated prompts (saving real pages)
    // without ever being hinted.
    EXPECT_GT(total_replays, 0);
    EXPECT_GT(total_evictions, 0);
    EXPECT_GT(mixed_step_traces, 0);
    EXPECT_GT(total_prefix_hits, 0);
    EXPECT_GT(total_prefix_tokens, 0);
    EXPECT_GT(ragged_decode_calls, 0);
    EXPECT_EQ(ragged_decode_calls, ragged_steps);
    // The tp=2 axis really ran sharded (and paid for its collectives).
    EXPECT_GT(total_collectives, 0);
    // The speculation axis must have exercised both regimes: drafts were
    // proposed, some were accepted (the identical-draft rounds), and
    // some were rejected hard enough to roll KV state back.
    EXPECT_GT(total_draft_calls, 0);
    EXPECT_GT(total_spec_proposed, 0);
    EXPECT_GT(total_spec_accepted, 0);
    EXPECT_LT(total_spec_accepted, total_spec_proposed);
    EXPECT_GT(total_truncates, 0);
    // The instrumented differential verifier must have actually fired:
    // every seed decoded through the planner's in-place KV appends (and
    // any in-place elementwise sites), each invocation double-executed
    // and bit-compared. A zero here means the corpus silently stopped
    // covering the aliasing machinery.
    unsetenv("RELAX_ALIAS_CHECK");
    EXPECT_GT(vm::aliasChecksPerformed() - alias_checks_before,
              seed_count * 4)
        << "differential alias checking did not run across the corpus";
}

TEST(FuzzTraceTest, BuildWiresKvBlockSizeIntoGraphBucket)
{
    // Engine::build with graphBucketTokens=0 (auto) aligns the capture
    // bucket to the KV block size; steady-state decode then replays.
    LlamaConfig config = LlamaConfig::tiny();
    EngineOptions options;
    options.kvBlockTokens = 4;
    auto engine = Engine::build(config, fuzzOptions(true),
                                /*data_mode=*/true, options);
    engine->addRequest({1, 2, 3}, 10);
    engine->run();
    const EngineStats& stats = engine->stats();
    EXPECT_GT(stats.decodeGraphBegins, 0);
    EXPECT_GT(stats.decodeGraphReplays, 0);
    EXPECT_GT(stats.decodeReplayHitRate(), 0.5);
}

} // namespace
} // namespace serve
} // namespace relax
