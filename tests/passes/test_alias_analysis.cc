/**
 * @file
 * Tests for the alias/liveness analysis, the automatic in-place planner
 * built on it, the VerifyAliasSafety lint, and the VM's differential
 * instrumentation mode (RELAX_ALIAS_CHECK).
 *
 * Coverage called out by the aliasing contract (DESIGN.md §9): tuple
 * outputs and projections in the may-alias lattice, symbolic-size
 * equality reuse agreeing with the alias facts, a candidate var still
 * live past the call site (must not rewrite), a non-donated pool
 * parameter standing in for a COW-shared page pool (must not rewrite),
 * automatic rediscovery of the frontend's KV-append sites, and the
 * alloc-shrink of captured decode regions.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "device/device.h"
#include "frontend/compile.h"
#include "frontend/llama.h"
#include "op/ops.h"
#include "passes/alias_analysis.h"
#include "passes/passes.h"
#include "shape/block_builder.h"
#include "support/error.h"
#include "vm/vm.h"

namespace relax {
namespace passes {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

device::DeviceSpec
hostSpec(bool with_graphs = false)
{
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(8) << 30;
    spec.supportsExecutionGraphs = with_graphs;
    return spec;
}

/** All call bindings in the function carrying an inplace_arg attr. */
std::vector<const CallNode*>
inplaceCallsOf(const Function& func)
{
    std::vector<const CallNode*> calls;
    const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            if (binding.value->kind() != RxKind::kCall) continue;
            const auto* call =
                static_cast<const CallNode*>(binding.value.get());
            if (call->attrs.count("inplace_arg")) calls.push_back(call);
        }
    }
    return calls;
}

/** The TIR callee name of a call_tir site ("" when not a call_tir). */
std::string
tirCalleeOf(const CallNode* call)
{
    if (call->args.empty() ||
        call->args[0]->kind() != RxKind::kGlobalVar) {
        return "";
    }
    return static_cast<const GlobalVarNode*>(call->args[0].get())->name;
}

/** Number of call bindings anywhere in the module carrying inplace_arg. */
int
countInplaceAttrs(const IRModulePtr& module)
{
    int count = 0;
    for (const auto& [name, func] : module->functions()) {
        if (!func->body || func->body->kind() != RxKind::kSeqExpr) continue;
        const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
        for (const auto& block : seq->blocks) {
            for (const auto& binding : block->bindings) {
                if (binding.value->kind() != RxKind::kCall) continue;
                const auto* call =
                    static_cast<const CallNode*>(binding.value.get());
                count += call->attrs.count("inplace_arg");
            }
        }
    }
    return count;
}

// ---------------------------------------------------------------------------
// The may-alias lattice
// ---------------------------------------------------------------------------

TEST(AliasAnalysisTest, TupleOutputsProjectPerFieldAliasFacts)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));       // 0: fresh root A
    Var lv1 = builder.emit(op::relu(x));      // 1: fresh root B
    Var t = builder.emit(makeTuple({lv0, lv1}), "t");    // 2
    Var p0 = builder.emit(makeTupleGetItem(t, 0), "p0"); // 3
    Var p1 = builder.emit(makeTupleGetItem(t, 1), "p1"); // 4
    Var out = builder.emitOutput(op::add(p0, lv1));      // 5
    builder.endBlock();
    Function func = makeFunction({x}, builder.finish(out),
                                 out->structInfo());
    module->addFunction("main", func);

    AliasLivenessAnalysis analysis(func);
    const AliasState& state = analysis.state();
    // Projections resolve to the field's roots, not the whole tuple.
    EXPECT_TRUE(state.mayAlias(p0.get(), lv0.get()));
    EXPECT_TRUE(state.mayAlias(p1.get(), lv1.get()));
    EXPECT_FALSE(state.mayAlias(p0.get(), p1.get()));
    EXPECT_FALSE(state.mayAlias(p0.get(), lv1.get()));
    // The tuple itself may alias both fields.
    EXPECT_TRUE(state.mayAlias(t.get(), lv0.get()));
    EXPECT_TRUE(state.mayAlias(t.get(), lv1.get()));
    // Params never alias fresh allocations.
    EXPECT_FALSE(state.mayAlias(x.get(), lv0.get()));

    // Liveness through the projection chain: lv0's storage is read via
    // p0 at the add (index 5), even though lv0 itself is last mentioned
    // at the tuple build (index 2).
    EXPECT_EQ(analysis.lastDirectUse(lv0.get()), 2u);
    EXPECT_EQ(analysis.lastLiveIndex(lv0.get()), 5u);
    // The body returns `out` (index 6 = bodyIndex).
    EXPECT_EQ(analysis.lastLiveIndex(out.get()), analysis.bodyIndex());
}

// ---------------------------------------------------------------------------
// The in-place planner
// ---------------------------------------------------------------------------

TEST(AliasAnalysisTest, RewritesDeadInputAndSkipsLiveInput)
{
    // z = exp(x); w = relu(z); out = add(w, z)
    //  - at `w`, candidate z is still live (read by the add) -> no
    //    rewrite, exactly the "var live across the downstream capture
    //    boundary" shape: a later region still reads it;
    //  - at `out`, candidate w is dead -> rewritten in place.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var z = builder.emit(op::exp(x), "z");
    Var w = builder.emit(op::relu(z), "w");
    Var out = builder.emitOutput(op::add(w, z), "out");
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));

    module = legalizeOpsPass().run(module);
    module = inplacePlanPass().run(module);

    Function main_fn = module->getFunction("main");
    auto inplace_calls = inplaceCallsOf(main_fn);
    ASSERT_EQ(inplace_calls.size(), 1u)
        << "expected exactly the add rewritten (relu's input stays live)";
    // The surviving rewrite is the add, onto its dead first input w.
    EXPECT_NE(tirCalleeOf(inplace_calls[0]).find("add"),
              std::string::npos)
        << "rewrote '" << tirCalleeOf(inplace_calls[0])
        << "' instead of the add";
    EXPECT_EQ(std::get<int64_t>(inplace_calls[0]->attrs.at("inplace_arg")),
              0);
    EXPECT_EQ(main_fn->attrs.at("inplace.rewrites"), "1");
}

TEST(AliasAnalysisTest, ShapeMismatchAndConstantsAreNeverRewritten)
{
    // permute writes transposed indices (not element-aligned) and its
    // output shape differs; matmul reduces. Neither may go in place.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    Var wgt = makeVar("wgt", tensorSInfo({intImm(4), intImm(4)},
                                         DataType::f32()));
    builder.beginDataflowBlock();
    Var z = builder.emit(op::exp(x), "z");
    Var t = builder.emit(op::permuteDims(z, {1, 0}), "t");
    Var back = builder.emit(op::permuteDims(t, {1, 0}), "back");
    Var out = builder.emitOutput(op::matmul(back, wgt), "out");
    builder.endBlock();
    module->addFunction("main", makeFunction({x, wgt},
                                             builder.finish(out),
                                             out->structInfo()));
    module = legalizeOpsPass().run(module);
    module = inplacePlanPass().run(module);
    EXPECT_EQ(countInplaceAttrs(module), 0);
    EXPECT_EQ(module->getFunction("main")->attrs.at("inplace.rewrites"),
              "0");
}

TEST(AliasAnalysisTest, NonDonatedPoolParamIsPinned)
{
    // A page-pool append whose pool argument is a function parameter:
    // without donation the storage may be COW-shared with forked
    // sequences (or owned by the caller outright), so the planner must
    // not write through it. With the frontend's donation attr the same
    // site is rewritten.
    auto build = [](bool donate) {
        auto module = IRModule::create();
        shape::BlockBuilder builder(module);
        StructInfo pool_info = tensorSInfo(
            {intImm(8), intImm(2), intImm(4), intImm(4)}, DataType::f32());
        Var pool = makeVar("pool", pool_info);
        Var fresh = makeVar("fresh", tensorSInfo({intImm(3), intImm(2),
                                                  intImm(4)},
                                                 DataType::f32()));
        Var lens = makeVar("lens", tensorSInfo({intImm(2)},
                                               DataType::i64()));
        Var cu = makeVar("cu", tensorSInfo({intImm(3)}, DataType::i64()));
        Var table = makeVar("table", tensorSInfo({intImm(2), intImm(4)},
                                                 DataType::i64()));
        builder.beginDataflowBlock();
        Var appended = builder.emitOutput(
            callDPSLibrary("kv.append_ragged",
                           {pool, fresh, lens, cu, table}, pool_info),
            "appended");
        builder.endBlock();
        Function func = makeFunction({pool, fresh, lens, cu, table},
                                     builder.finish(appended),
                                     appended->structInfo());
        if (donate) func->attrs["donatable_params"] = "pool";
        module->addFunction("main", func);
        return inplacePlanPass().run(module);
    };

    EXPECT_EQ(countInplaceAttrs(build(/*donate=*/false)), 0)
        << "wrote through a pool the function does not own";
    EXPECT_EQ(countInplaceAttrs(build(/*donate=*/true)), 1);
}

TEST(AliasAnalysisTest, RediscoversKVAppendSitesAutomatically)
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    IRModulePtr module = frontend::buildLlama(config);
    // The frontend emits plain DPS calls: zero hand-placed attrs.
    EXPECT_EQ(countInplaceAttrs(module), 0);

    frontend::CompileOptions options;
    options.device = hostSpec();
    options.bounds = {{"b", 4}, {"n", 32}, {"m", 64}};
    auto exec = frontend::compile(module, options);

    // Both KV-append sites per layer come back as in-place kernel calls.
    int64_t inplace_appends = 0;
    for (const auto& instr : exec->functions.at("decode_ragged").instrs) {
        if (instr.op == vm::Instr::Op::kKernelCall &&
            instr.callee == "kv.append_ragged" &&
            instr.attrs.count("inplace_arg")) {
            ++inplace_appends;
        }
    }
    EXPECT_EQ(inplace_appends, 2 * config.numLayers);

    // Site classes beyond the library append: the residual adds and the
    // elementwise epilogues rewrite through the TIR safety check, so the
    // planner's callee log names at least three distinct kernel classes.
    Function decode = exec->module->getFunction("decode_ragged");
    ASSERT_NE(decode, nullptr);
    ASSERT_TRUE(decode->attrs.count("inplace.callees"))
        << "planner recorded no rewritten callees";
    const std::string& callees = decode->attrs.at("inplace.callees");
    std::set<std::string> classes;
    std::stringstream stream(callees);
    for (std::string name; std::getline(stream, name, ';');) {
        classes.insert(name);
    }
    EXPECT_EQ(classes.count("kv.append_ragged"), 1u) << callees;
    EXPECT_GE(classes.size(), 3u)
        << "fewer than 3 distinct rewrite site classes: " << callees;
}

TEST(AliasAnalysisTest, CapturedDecodeRegionsShedAllocs)
{
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    frontend::CompileOptions options;
    options.device = hostSpec(/*with_graphs=*/true);
    options.bounds = {{"b", 4}, {"n", 32}, {"m", 64}};
    options.graphBucketTokens = 4;
    frontend::CompileOptions no_planning = options;
    no_planning.enableInplacePlanning = false;

    struct DecodeShape
    {
        int64_t allocs = 0;
        int64_t graphRegions = 0;
    };
    auto shape_of = [](const vm::ExecutablePtr& exec) {
        DecodeShape shape;
        for (const auto& instr : exec->functions.at("decode_ragged").instrs) {
            shape.allocs += instr.op == vm::Instr::Op::kAllocTensor;
            shape.graphRegions += instr.op == vm::Instr::Op::kGraphBegin;
        }
        return shape;
    };

    DecodeShape with = shape_of(
        frontend::compile(frontend::buildLlama(config), options));
    DecodeShape without = shape_of(
        frontend::compile(frontend::buildLlama(config), no_planning));
    // Every rewrite sheds one alloc_tensor: >= 3 site classes over 2
    // layers means a substantial drop, not an off-by-one.
    EXPECT_LE(with.allocs + 2 * config.numLayers, without.allocs)
        << "in-place planning did not shed alloc_tensor instructions "
        << "from the decode path (with=" << with.allocs
        << " without=" << without.allocs << ")";
    // The un-planned decode allocates pool-sized append outputs, which
    // keeps the region out of graph capture entirely; the planned one
    // must still capture.
    EXPECT_GT(with.graphRegions, 0);
}

// ---------------------------------------------------------------------------
// Planner/verifier agreement
// ---------------------------------------------------------------------------

TEST(AliasAnalysisTest, SymbolicSizeEqualityReusePassesVerifier)
{
    // Figure 10 chain with in-place planning in the pipeline: relu goes
    // in place onto the (n,2) transpose, the final (2,n) transpose
    // output reuses the freed exp storage (8n bytes == 8n bytes, proved
    // symbolically), and the planned module satisfies the aliasing
    // contract.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({intImm(2), n}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var lv1 = builder.emit(op::permuteDims(lv0, {1, 0}));
    Var lv2 = builder.emit(op::relu(lv1));
    Var lv3 = builder.emitOutput(op::permuteDims(lv2, {1, 0}));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(lv3),
                                             lv3->structInfo()));

    module = legalizeOpsPass().run(module);
    module = inplacePlanPass().run(module);
    module = lowerCallTIRPass().run(module);
    module = staticMemoryPlanPass().run(module);

    Function main_fn = module->getFunction("main");
    EXPECT_EQ(main_fn->attrs.at("inplace.rewrites"), "1");
    EXPECT_EQ(main_fn->attrs.at("planned.num_storages"), "2");
    EXPECT_EQ(main_fn->attrs.at("planned.reuse_hits"), "1");
    EXPECT_NO_THROW(verifyAliasSafety(module));

    MemoryPlanReport report = memoryPlanReport(module);
    EXPECT_EQ(report.storagesAllocated, 2);
    EXPECT_EQ(report.reuseHits, 1);
    EXPECT_EQ(report.inplaceWrites, 1);
}

TEST(AliasAnalysisTest, VerifierRejectsStorageReuseWhileLive)
{
    // Hand-built ill-formed plan: two instantiations of one storage with
    // overlapping live ranges (t0 is read after t1 is created).
    auto module = IRModule::create();
    StructInfo tinfo = tensorSInfo({intImm(4)}, DataType::f32());
    Var s = makeVar("s", objectSInfo());
    Var t0 = makeVar("t0", tinfo);
    Var t1 = makeVar("t1", tinfo);
    Var out = makeVar("out", tinfo);

    Call alloc_s = makeCall(getOp("relax.memory.alloc_storage"),
                            {makePrimValue(intImm(16))});
    alloc_s->setStructInfo(objectSInfo());
    Call alloc_t0 =
        makeCall(getOp("relax.memory.alloc_tensor"), {s}, {}, {tinfo});
    alloc_t0->setStructInfo(tinfo);
    Call alloc_t1 =
        makeCall(getOp("relax.memory.alloc_tensor"), {s}, {}, {tinfo});
    alloc_t1->setStructInfo(tinfo);
    Call use = op::add(t0, t1); // t0 read after t1's storage reuse
    use->setStructInfo(tinfo);

    auto block = std::make_shared<BindingBlockNode>(false);
    block->bindings.push_back({s, alloc_s, false, nullptr});
    block->bindings.push_back({t0, alloc_t0, false, nullptr});
    block->bindings.push_back({t1, alloc_t1, false, nullptr});
    block->bindings.push_back({out, use, false, nullptr});
    Function func =
        makeFunction({}, makeSeqExpr({block}, out), tinfo);
    module->addFunction("main", func);

    EXPECT_THROW(verifyAliasSafety(module), IRError);
}

TEST(AliasAnalysisTest, VerifierAcceptsDisjointStorageReuse)
{
    // The legal version: t0's last use precedes t1's creation.
    auto module = IRModule::create();
    StructInfo tinfo = tensorSInfo({intImm(4)}, DataType::f32());
    Var s = makeVar("s", objectSInfo());
    Var t0 = makeVar("t0", tinfo);
    Var mid = makeVar("mid", tinfo);
    Var t1 = makeVar("t1", tinfo);

    Call alloc_s = makeCall(getOp("relax.memory.alloc_storage"),
                            {makePrimValue(intImm(16))});
    alloc_s->setStructInfo(objectSInfo());
    Call alloc_t0 =
        makeCall(getOp("relax.memory.alloc_tensor"), {s}, {}, {tinfo});
    alloc_t0->setStructInfo(tinfo);
    Call use0 = op::relu(t0);
    use0->setStructInfo(tinfo);
    Call alloc_t1 =
        makeCall(getOp("relax.memory.alloc_tensor"), {s}, {}, {tinfo});
    alloc_t1->setStructInfo(tinfo);

    auto block = std::make_shared<BindingBlockNode>(false);
    block->bindings.push_back({s, alloc_s, false, nullptr});
    block->bindings.push_back({t0, alloc_t0, false, nullptr});
    block->bindings.push_back({mid, use0, false, nullptr});
    block->bindings.push_back({t1, alloc_t1, false, nullptr});
    Function func = makeFunction({}, makeSeqExpr({block}, t1), tinfo);
    module->addFunction("main", func);

    EXPECT_NO_THROW(verifyAliasSafety(module));
}

// ---------------------------------------------------------------------------
// The instrumented differential mode
// ---------------------------------------------------------------------------

TEST(AliasAnalysisTest, DifferentialModeVerifiesInplaceKernels)
{
    // z = exp(x); out = add(z, x): with fusion off, z is a dead fresh
    // tensor at the add and the planner aliases the output onto it.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var z = builder.emit(op::exp(x), "z");
    Var out = builder.emitOutput(op::add(z, x), "out");
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));

    frontend::CompileOptions options;
    options.device = hostSpec();
    options.enableFusion = false;
    auto exec = frontend::compile(module, options);
    EXPECT_EQ(countInplaceAttrs(exec->module), 1);

    setenv("RELAX_ALIAS_CHECK", "1", 1);
    int64_t before = vm::aliasChecksPerformed();
    vm::VirtualMachine machine(
        exec, std::make_shared<device::SimDevice>(hostSpec()),
        /*data_mode=*/true);
    NDArray input = NDArray::fromVector({2, 4}, DataType::f32(),
                                        {0, 1, -1, 2, 3, -2, 0.5, 0});
    vm::Value result = machine.invoke("main", {input});
    unsetenv("RELAX_ALIAS_CHECK");

    // The aliased run and the copy-in/copy-out reference bit-matched
    // (a divergence throws), and the check actually fired.
    EXPECT_EQ(vm::aliasChecksPerformed() - before, 1);
    const NDArray& out_data = std::get<NDArray>(result);
    for (int i = 0; i < 8; ++i) {
        EXPECT_NEAR(out_data.at(i),
                    std::exp(input.at(i)) + input.at(i), 1e-6);
    }
}

} // namespace
} // namespace passes
} // namespace relax
