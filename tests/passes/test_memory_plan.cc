/**
 * @file
 * Tests for dynamic shape-aware memory planning (Algorithm 3),
 * reproducing the Figure 10 example: four intermediate tensors of shapes
 * (2, n) and (n, 2) reuse two storage chunks. Also covers upper-bound
 * static planning (§4.3) and workspace lifting (Fig. 11) feeding into it.
 */
#include <gtest/gtest.h>

#include "op/ops.h"
#include "op/tir_kernels.h"
#include "passes/passes.h"
#include "shape/block_builder.h"
#include "tir/analysis.h"

namespace relax {
namespace passes {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

/** Figure 10: x:(2,n) -> exp -> transpose -> relu -> transpose. */
IRModulePtr
buildFigure10Module()
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({intImm(2), n}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var lv1 = builder.emit(op::permuteDims(lv0, {1, 0}));
    Var lv2 = builder.emit(op::relu(lv1));
    Var lv3 = builder.emitOutput(op::permuteDims(lv2, {1, 0}));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(lv3),
                                             lv3->structInfo()));
    wellFormed(module);
    return module;
}

struct PlanStats
{
    size_t allocStorages = 0;
    size_t allocTensors = 0;
    size_t kernelCalls = 0;
};

PlanStats
statsOf(const IRModulePtr& module, const std::string& fn = "main")
{
    PlanStats stats;
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction(fn)->body.get());
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            stats.allocStorages +=
                isOpCall(binding.value, "relax.memory.alloc_storage");
            stats.allocTensors +=
                isOpCall(binding.value, "relax.memory.alloc_tensor");
            stats.kernelCalls +=
                isOpCall(binding.value, "relax.vm.kernel_call");
        }
    }
    return stats;
}

IRModulePtr
lowerForPlanning(IRModulePtr module)
{
    module = legalizeOpsPass().run(module);
    module = lowerCallTIRPass().run(module);
    return module;
}

TEST(MemoryPlanTest, Figure10ReusesTwoStorages)
{
    auto module = lowerForPlanning(buildFigure10Module());
    module = staticMemoryPlanPass().run(module);
    wellFormed(module);
    PlanStats stats = statsOf(module);
    // Four intermediates, two storages: lv0 (2,n) is dead when lv2 (n,2)
    // allocates, and the analyzer proves 2*n*4 == n*2*4 bytes.
    EXPECT_EQ(stats.allocTensors, 4u);
    EXPECT_EQ(stats.allocStorages, 2u);
    EXPECT_EQ(stats.kernelCalls, 4u);
    // Fully symbolic sizes: not a static plan.
    EXPECT_EQ(module->getFunction("main")->attrs.at("static_plan"), "0");
}

TEST(MemoryPlanTest, UpperBoundMakesPlanStatic)
{
    auto module = lowerForPlanning(buildFigure10Module());
    module = staticMemoryPlanPass({{"n", 1024}}).run(module);
    Function main_fn = module->getFunction("main");
    EXPECT_EQ(main_fn->attrs.at("static_plan"), "1");
    // Two storages of 2*1024*4 bytes each.
    EXPECT_EQ(main_fn->attrs.at("planned.total_bytes"),
              std::to_string(2 * 2 * 1024 * 4));
    EXPECT_EQ(main_fn->attrs.at("planned.num_storages"), "2");
}

TEST(MemoryPlanTest, DifferentSizesDoNotAlias)
{
    // exp (n,4) then matmul to (n,8): sizes differ, two live at once.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(4), intImm(8)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var out = builder.emitOutput(op::matmul(lv0, w));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    module = lowerForPlanning(module);
    module = staticMemoryPlanPass().run(module);
    EXPECT_EQ(statsOf(module).allocStorages, 2u);
}

TEST(MemoryPlanTest, LiveTensorsNeverShareStorage)
{
    // add(exp(x), relu(x)): both intermediates live simultaneously.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var a = builder.emit(op::exp(x));
    Var b = builder.emit(op::relu(x));
    Var out = builder.emitOutput(op::add(a, b));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));
    module = lowerForPlanning(module);
    module = staticMemoryPlanPass().run(module);
    // a and b overlap, and both stay live while add writes its output
    // (no in-place aliasing), so three distinct storages are required.
    EXPECT_EQ(statsOf(module).allocStorages, 3u);
}

TEST(WorkspaceLiftTest, Figure11LiftsSplitKWorkspace)
{
    // main calls a split-K matmul whose workspace is inside the kernel.
    auto module = IRModule::create();
    tir::PrimFunc splitk = op::makeSplitKMatmulFunc(
        "mm_split_k", {intImm(8), intImm(16)}, {intImm(16), intImm(8)}, 4,
        DataType::f32());
    GlobalVar gv = module->addTIRFunc(splitk);
    shape::BlockBuilder builder(module);
    Var x = makeVar("x", tensorSInfo({intImm(8), intImm(16)},
                                     DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(16), intImm(8)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var out = builder.emitOutput(
        callTIR(gv, {x, w},
                tensorSInfo({intImm(8), intImm(8)}, DataType::f32())));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    wellFormed(module);

    module = workspaceLiftingPass().run(module);
    wellFormed(module);

    // The kernel now takes the workspace as a parameter...
    tir::PrimFunc lifted = module->getTIRFunc("mm_split_k");
    EXPECT_EQ(lifted->params.size(), 4u); // A, B, workspace, Y
    EXPECT_FALSE(tir::findGlobalWorkspace(lifted).has_value());
    EXPECT_EQ(lifted->attrs.at("lifted_workspace"), "1");

    // ...allocated at graph level right before the call (Fig. 11).
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    const auto& bindings = seq->blocks[0]->bindings;
    ASSERT_EQ(bindings.size(), 2u);
    EXPECT_TRUE(
        isOpCall(bindings[0].value, "relax.builtin.alloc_tensor"));
    EXPECT_TRUE(isOpCall(bindings[1].value, "relax.call_tir"));
    const auto* call =
        static_cast<const CallNode*>(bindings[1].value.get());
    // callee + A + B + workspace = 4 args.
    EXPECT_EQ(call->args.size(), 4u);
}

TEST(WorkspaceLiftTest, LiftedWorkspaceJoinsMemoryPlan)
{
    // After lifting, the workspace participates in storage reuse: it can
    // share the pool with equally-sized intermediates.
    auto module = IRModule::create();
    tir::PrimFunc splitk = op::makeSplitKMatmulFunc(
        "mm_split_k", {intImm(8), intImm(16)}, {intImm(16), intImm(8)}, 4,
        DataType::f32());
    GlobalVar gv = module->addTIRFunc(splitk);
    shape::BlockBuilder builder(module);
    Var x = makeVar("x", tensorSInfo({intImm(8), intImm(16)},
                                     DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(16), intImm(8)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var mm = builder.emit(
        callTIR(gv, {x, w},
                tensorSInfo({intImm(8), intImm(8)}, DataType::f32())));
    Var out = builder.emitOutput(op::relu(mm));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    module = workspaceLiftingPass().run(module);
    module = lowerForPlanning(module);
    module = staticMemoryPlanPass().run(module);
    wellFormed(module);
    PlanStats stats = statsOf(module);
    // workspace (4*8*8 f32 = 1024B), mm out (256B), relu out (256B):
    // relu out reuses... workspace still live during mm, mm out live
    // until relu. Expect 3 tensors but <= 3 storages with reuse of the
    // mm-out-sized chunk.
    EXPECT_EQ(stats.allocTensors, 3u);
    EXPECT_LE(stats.allocStorages, 3u);
    EXPECT_EQ(module->getFunction("main")->attrs.at("static_plan"), "1");
}

TEST(GraphOffloadTest, WrapsStaticKernelRuns)
{
    auto module = buildFigure10Module();
    TargetInfo target;
    target.supportsExecutionGraphs = true;
    module = legalizeOpsPass().run(module);
    module = lowerCallTIRPass().run(module);
    module = staticMemoryPlanPass({{"n", 64}}).run(module);
    module = graphOffloadPass(target).run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    size_t begins = 0, ends = 0;
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            begins += isOpCall(binding.value, "relax.vm.graph_begin");
            ends += isOpCall(binding.value, "relax.vm.graph_end");
        }
    }
    EXPECT_EQ(begins, 1u);
    EXPECT_EQ(ends, 1u);
}

TEST(GraphOffloadTest, SkipsDynamicPlans)
{
    auto module = buildFigure10Module();
    TargetInfo target;
    target.supportsExecutionGraphs = true;
    module = legalizeOpsPass().run(module);
    module = lowerCallTIRPass().run(module);
    module = staticMemoryPlanPass().run(module); // no bounds -> dynamic
    module = graphOffloadPass(target).run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            EXPECT_FALSE(isOpCall(binding.value, "relax.vm.graph_begin"));
        }
    }
}

} // namespace
} // namespace passes
} // namespace relax
