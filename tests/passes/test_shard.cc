/**
 * @file
 * ShardPass: Megatron splits on decode_ragged — column/row/vocab weight
 * division, per-shard KV pools, exactly two all-reduces per layer plus
 * one logits all-gather, full-shape results at the collective sites, and
 * clear errors for non-divisible or quantized models.
 */
#include <gtest/gtest.h>

#include <map>

#include "frontend/llama.h"
#include "passes/passes.h"

namespace relax {
namespace passes {
namespace {

using namespace ir;
using Var = ir::Var;
using CallNode = ir::CallNode;
using frontend::LlamaConfig;

/** Collects `name -> count` of call_dps_library callees in a function. */
std::map<std::string, int>
libraryCallCounts(const Function& func)
{
    std::map<std::string, int> counts;
    const auto* seq = static_cast<const SeqExprNode*>(func->body.get());
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            if (!isOpCall(binding.value, "relax.call_dps_library")) {
                continue;
            }
            const auto* call =
                static_cast<const CallNode*>(binding.value.get());
            const auto* callee =
                static_cast<const ExternFuncNode*>(call->args[0].get());
            ++counts[callee->name];
        }
    }
    return counts;
}

int64_t
literalDim(const StructInfo& sinfo, size_t dim)
{
    const auto* tensor = asTensor(sinfo);
    EXPECT_TRUE(tensor && tensor->shape);
    return *asIntImm((*tensor->shape)[dim]);
}

TEST(ShardPassTest, DividesWeightsPoolsAndInsertsCollectives)
{
    LlamaConfig config = LlamaConfig::tiny();
    IRModulePtr module = frontend::buildLlama(config);
    module = shardPass(2).run(module);

    Function func = module->getFunction("decode_ragged");
    ASSERT_TRUE(func);

    // Per-shard parameter shapes: pools halve their head axis, column
    // weights halve dim 0, row weights halve dim 1, norms replicate.
    std::map<std::string, Var> params;
    for (const auto& p : func->params) params[p->name] = p;
    EXPECT_EQ(literalDim(params.at("k_pool0")->structInfo(), 1),
              config.numHeads / 2);
    EXPECT_EQ(literalDim(params.at("v_pool1")->structInfo(), 1),
              config.numHeads / 2);
    int64_t proj = config.numHeads * config.headDim;
    EXPECT_EQ(literalDim(params.at("l0_wq")->structInfo(), 0), proj / 2);
    EXPECT_EQ(literalDim(params.at("l0_wq")->structInfo(), 1),
              config.hiddenSize);
    EXPECT_EQ(literalDim(params.at("l0_wo")->structInfo(), 0),
              config.hiddenSize);
    EXPECT_EQ(literalDim(params.at("l0_wo")->structInfo(), 1), proj / 2);
    EXPECT_EQ(literalDim(params.at("l1_w_gate")->structInfo(), 0),
              config.ffnSize / 2);
    EXPECT_EQ(literalDim(params.at("l1_w_down")->structInfo(), 1),
              config.ffnSize / 2);
    EXPECT_EQ(literalDim(params.at("lm_head")->structInfo(), 0),
              config.vocabSize / 2);
    EXPECT_EQ(literalDim(params.at("l0_attn_norm")->structInfo(), 0),
              config.hiddenSize);
    EXPECT_EQ(literalDim(params.at("tok_embeddings")->structInfo(), 0),
              config.vocabSize);

    // The sharding contract: one all-reduce after wo and one after
    // w_down per layer, one logits all-gather for the whole function.
    std::map<std::string, int> calls = libraryCallCounts(func);
    EXPECT_EQ(calls["ccl.all_reduce"], 2 * (int)config.numLayers);
    EXPECT_EQ(calls["ccl.all_gather"], 1);
    EXPECT_EQ(calls["kv.append_ragged"], 2 * (int)config.numLayers);

    // Collective outputs carry FULL shapes: the function returns the
    // complete logits while the pool outputs stay shard-local.
    const auto* ret = asTuple(func->retSInfo);
    ASSERT_TRUE(ret);
    EXPECT_EQ(literalDim(ret->fields[0], 2), config.vocabSize);
    EXPECT_EQ(literalDim(ret->fields[1], 1), config.numHeads / 2);

    // The untouched functions keep their full shapes.
    Function decode = module->getFunction("decode");
    std::map<std::string, Var> decode_params;
    for (const auto& p : decode->params) decode_params[p->name] = p;
    EXPECT_EQ(literalDim(decode_params.at("l0_wq")->structInfo(), 0),
              proj);
}

TEST(ShardPassTest, SingleShardAndAbsentFunctionAreNoOps)
{
    IRModulePtr module = frontend::buildLlama(LlamaConfig::tiny());
    Function before = module->getFunction("decode_ragged");
    module = shardPass(1).run(module);
    EXPECT_EQ(module->getFunction("decode_ragged").get(), before.get());
    EXPECT_TRUE(libraryCallCounts(before).count("ccl.all_reduce") == 0);

    IRModulePtr empty = IRModule::create();
    EXPECT_NO_THROW(shardPass(4).run(empty));
}

TEST(ShardPassTest, IndivisibleHeadCountThrows)
{
    // tiny has 2 heads: proj = 8 divides by 4 but the head reshape does
    // not — the error must name the offending dimension.
    IRModulePtr module = frontend::buildLlama(LlamaConfig::tiny());
    try {
        shardPass(4).run(module);
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_NE(std::string(e.what()).find("not divisible by 4"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardPassTest, QuantizedModelThrows)
{
    IRModulePtr module = frontend::buildLlama(
        LlamaConfig::tiny().withQuant(frontend::Quant::kQ4));
    try {
        shardPass(2).run(module);
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_NE(std::string(e.what()).find("no tensor-parallel"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardWeightsTest, SlicesMatchTheMegatronLayout)
{
    LlamaConfig config = LlamaConfig::tiny();
    std::vector<NDArray> full =
        frontend::makeLlamaWeights(config, /*with_data=*/true);
    std::vector<NDArray> s0 =
        frontend::shardLlamaWeights(config, full, 0, 2);
    std::vector<NDArray> s1 =
        frontend::shardLlamaWeights(config, full, 1, 2);
    ASSERT_EQ(s0.size(), full.size());

    std::vector<std::string> names;
    frontend::buildLlama(config, &names);
    int64_t proj = config.numHeads * config.headDim;
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "l0_wq") {
            // Column-parallel: shard 0 takes the first proj/2 rows.
            EXPECT_EQ(s0[i].shape()[0], proj / 2);
            EXPECT_EQ(s0[i].at(0), full[i].at(0));
            EXPECT_EQ(s1[i].at(0),
                      full[i].at(proj / 2 * config.hiddenSize));
        } else if (names[i] == "l0_wo") {
            // Row-parallel: shard 1 takes the second half of each row.
            EXPECT_EQ(s1[i].shape()[1], proj / 2);
            EXPECT_EQ(s1[i].at(0), full[i].at(proj / 2));
        } else if (names[i] == "final_norm") {
            // Replicated by handle.
            EXPECT_EQ(&s0[i].data(), &full[i].data());
        }
    }

    // Metadata-only weights slice shape-only (timing mode).
    std::vector<NDArray> meta =
        frontend::makeLlamaWeights(config, /*with_data=*/false);
    std::vector<NDArray> meta0 =
        frontend::shardLlamaWeights(config, meta, 0, 2);
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_FALSE(meta0[i].hasData());
    }

    // Odd shard counts that do not divide the model throw.
    try {
        frontend::shardLlamaWeights(config, full, 0, 3);
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_NE(std::string(e.what()).find("not divisible"),
                  std::string::npos);
    }
}

} // namespace
} // namespace passes
} // namespace relax
