/**
 * @file
 * Tests for the basic passes: normalize, DCE, legalize, pattern
 * annotation and partial library lowering.
 */
#include <gtest/gtest.h>

#include "op/ops.h"
#include "passes/passes.h"
#include "shape/block_builder.h"
#include "tir/analysis.h"
#include "frontend/compile.h"
#include "vm/vm.h"

namespace relax {
namespace passes {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

/** Builds main(x: (n, 8)) = exp(x) |> relu |> add(x') chain for tests. */
IRModulePtr
buildChainModule(bool with_dead_binding = false)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(8)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var lv1 = builder.emit(op::relu(lv0));
    if (with_dead_binding) {
        builder.emit(op::negative(lv0)); // unused
    }
    Var out = builder.emitOutput(op::add(lv1, x));
    builder.endBlock();
    module->addFunction(
        "main", makeFunction({x}, builder.finish(out), out->structInfo()));
    wellFormed(module);
    return module;
}

size_t
countBindings(const IRModulePtr& module, const std::string& fn)
{
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction(fn)->body.get());
    size_t count = 0;
    for (const auto& block : seq->blocks) count += block->bindings.size();
    return count;
}

TEST(DCETest, RemovesUnusedDataflowBindings)
{
    auto module = buildChainModule(true);
    EXPECT_EQ(countBindings(module, "main"), 4u);
    module = deadCodeEliminationPass().run(module);
    EXPECT_EQ(countBindings(module, "main"), 3u);
    wellFormed(module);
}

TEST(DCETest, KeepsEverythingLive)
{
    auto module = buildChainModule(false);
    module = deadCodeEliminationPass().run(module);
    EXPECT_EQ(countBindings(module, "main"), 3u);
}

TEST(LegalizeTest, LowersOpsToCallTIR)
{
    auto module = buildChainModule(false);
    module = legalizeOpsPass().run(module);
    wellFormed(module);
    // Three kernels generated: exp, relu, add.
    EXPECT_EQ(module->tirFuncs().size(), 3u);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            EXPECT_TRUE(isOpCall(binding.value, "relax.call_tir"));
        }
    }
}

TEST(LegalizeTest, DataDependentOpBecomesPackedCall)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n}, DataType::f32()));
    builder.beginDataflowBlock();
    Var out = builder.emitOutput(op::unique(x));
    builder.endBlock();
    module->addFunction(
        "main", makeFunction({x}, builder.finish(out), out->structInfo()));
    module = legalizeOpsPass().run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    EXPECT_TRUE(isOpCall(seq->blocks[0]->bindings[0].value,
                         "relax.call_packed"));
}

TEST(AnnotateTest, TagsPatternKinds)
{
    auto module = buildChainModule(false);
    module = legalizeOpsPass().run(module);
    module = annotateTIRPatternsPass().run(module);
    for (const auto& [name, func] : module->tirFuncs()) {
        ASSERT_TRUE(func->attrs.count(tir::kComputePatternAttr)) << name;
        EXPECT_EQ(func->attrs.at(tir::kComputePatternAttr), "ElementWise")
            << name;
    }
}

TEST(LibLowerTest, MatmulGoesToGemmLibrary)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(64)}, DataType::f16()));
    Var w = makeVar("w", tensorSInfo({intImm(64), intImm(32)},
                                     DataType::f16()));
    builder.beginDataflowBlock();
    Var out = builder.emitOutput(op::matmul(x, w));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    TargetInfo target;
    target.gemmLibrary = "cublas";
    module = partialLibraryLoweringPass(target).run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    const auto& binding = seq->blocks[0]->bindings[0];
    ASSERT_TRUE(isOpCall(binding.value, "relax.call_dps_library"));
    const auto* call = static_cast<const CallNode*>(binding.value.get());
    EXPECT_EQ(static_cast<const ExternFuncNode*>(call->args[0].get())->name,
              "cublas.matmul");
}

TEST(LibLowerTest, SkinnyMatmulStaysOnCompilerPath)
{
    // Batch-1 decode: 1 row -> compiler-generated kernel (§5.1).
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    Var x = makeVar("x", tensorSInfo({intImm(1), intImm(64)},
                                     DataType::f16()));
    Var w = makeVar("w", tensorSInfo({intImm(64), intImm(32)},
                                     DataType::f16()));
    builder.beginDataflowBlock();
    Var out = builder.emitOutput(op::matmul(x, w));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    TargetInfo target;
    target.gemmLibrary = "cublas";
    target.libraryGemmMinRows = 2;
    module = partialLibraryLoweringPass(target).run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    EXPECT_TRUE(isOpCall(seq->blocks[0]->bindings[0].value, "relax.matmul"));
}

TEST(LibLowerTest, NoLibraryMeansNoChange)
{
    auto module = buildChainModule(false);
    TargetInfo target; // no libraries at all
    module = partialLibraryLoweringPass(target).run(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    EXPECT_TRUE(isOpCall(seq->blocks[0]->bindings[0].value, "relax.exp"));
}

TEST(PipelineTest, RunsAllStagesWellFormed)
{
    auto module = buildChainModule(true);
    TargetInfo target;
    target.gemmLibrary = "cublas";
    target.supportsExecutionGraphs = true;
    SymBounds bounds{{"n", 128}};
    Pipeline pipeline = buildDefaultPipeline(target, bounds);
    EXPECT_NO_THROW(module = pipeline.run(module));
    // After lowering, main's bindings are memory + kernel ops only.
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    bool saw_kernel = false;
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            saw_kernel |= isOpCall(binding.value, "relax.vm.kernel_call");
            EXPECT_FALSE(isOpCall(binding.value, "relax.exp"));
            EXPECT_FALSE(isOpCall(binding.value, "relax.call_tir"));
        }
    }
    EXPECT_TRUE(saw_kernel);
    // Static plan recorded for graph offloading.
    EXPECT_EQ(module->getFunction("main")->attrs.at("static_plan"), "1");
}

TEST(ConstantFoldTest, FoldsPureConstantSubgraphs)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    NDArray a = NDArray::fromVector({2}, DataType::f32(), {1, 2});
    NDArray b = NDArray::fromVector({2}, DataType::f32(), {10, 20});
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(2)}, DataType::f32()));
    builder.beginDataflowBlock();
    // add(const, const) then relu(const) folds away entirely; the final
    // add against the runtime input stays.
    Var folded = builder.emit(op::add(makeConstant(a), makeConstant(b)));
    Var folded2 = builder.emit(op::relu(folded));
    Var out = builder.emitOutput(op::add(x, folded2));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));
    module = constantFoldPass().run(module);
    wellFormed(module);
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    // Only the data-dependent add remains.
    ASSERT_EQ(seq->blocks[0]->bindings.size(), 1u);
    const auto& binding = seq->blocks[0]->bindings[0];
    EXPECT_TRUE(isOpCall(binding.value, "relax.add"));
    const auto* call = static_cast<const CallNode*>(binding.value.get());
    ASSERT_EQ(call->args[1]->kind(), RxKind::kConstant);
    const auto& data =
        static_cast<const ConstantNode*>(call->args[1].get())->data;
    EXPECT_EQ(data.data(), (std::vector<double>{11, 22}));
}

TEST(ConstantFoldTest, LeavesDynamicOperandsAlone)
{
    auto module = buildChainModule(false);
    std::string before = module->toString();
    module = constantFoldPass().run(module);
    EXPECT_EQ(module->toString(), before);
}

TEST(ConstantFoldTest, FoldedProgramStillExecutesCorrectly)
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    NDArray w = NDArray::fromVector({2, 2}, DataType::f32(), {1, 2, 3, 4});
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(2)}, DataType::f32()));
    builder.beginDataflowBlock();
    // transpose(const) folds; matmul(x, folded) stays.
    Var wt = builder.emit(op::permuteDims(makeConstant(w), {1, 0}));
    Var out = builder.emitOutput(op::matmul(x, wt));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));
    module = constantFoldPass().run(module);

    frontend::CompileOptions options;
    options.device.name = "host";
    options.device.backend = "cpu";
    auto exec = frontend::compile(module, options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    vm::VirtualMachine machine(exec, dev, true);
    NDArray input = NDArray::fromVector({1, 2}, DataType::f32(), {1, 1});
    NDArray result = std::get<NDArray>(machine.invoke("main", {input}));
    // x @ w^T = [1+2, 3+4].
    EXPECT_EQ(result.data(), (std::vector<double>{3, 7}));
}

} // namespace
} // namespace passes
} // namespace relax
