/**
 * @file
 * Reproduces the Figure 9 case study: a custom 4-bit quantization decode
 * written directly as a tensor program is classified Injective by
 * analysis feedback, fused with the consuming matmul by FuseOps, and
 * merged into a single fused_decode_q4_mm kernel by FuseTensorIR — the
 * cross-level capability traditional operator-level fusers lack.
 * Correctness of every stage is validated against the interpreter.
 */
#include <gtest/gtest.h>

#include "op/ops.h"
#include "op/tir_kernels.h"
#include "passes/passes.h"
#include "shape/block_builder.h"
#include "tir/analysis.h"
#include "tir/interpreter.h"

namespace relax {
namespace passes {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;
using CallNode = ir::CallNode;

/** Builds the Fig. 9 initial program: decode_q4 (custom TIR) + matmul. */
IRModulePtr
buildDecodeMatmulModule(int64_t k_dim, int64_t n_out)
{
    auto module = IRModule::create();
    // Custom tensor program for the quantized decode.
    tir::PrimFunc decode = op::makeDecodeQ4Func(
        "decode_q4", intImm(k_dim), intImm(n_out), DataType::f32());
    GlobalVar decode_gv = module->addTIRFunc(decode);

    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(k_dim)}, DataType::f32()));
    Var wdata = makeVar(
        "Wdata", tensorSInfo({intImm(k_dim), intImm((n_out + 7) / 8)},
                             DataType::u32()));
    Var wscale = makeVar(
        "Wscale", tensorSInfo({intImm(k_dim), intImm((n_out + 31) / 32)},
                              DataType::f32()));
    builder.beginDataflowBlock();
    Var w = builder.emit(callTIR(
        decode_gv, {wdata, wscale},
        tensorSInfo({intImm(k_dim), intImm(n_out)}, DataType::f32())));
    Var out = builder.emitOutput(op::matmul(x, w));
    builder.endBlock();
    module->addFunction("main",
                        makeFunction({x, wdata, wscale},
                                     builder.finish(out),
                                     out->structInfo()));
    wellFormed(module);
    return module;
}

/** Runs main through the interpreter given lowered call_tir bindings. */
NDArray
evalMain(const IRModulePtr& module, const std::vector<NDArray>& inputs)
{
    Function main_fn = module->getFunction("main");
    const auto* seq = static_cast<const SeqExprNode*>(main_fn->body.get());
    std::unordered_map<const VarNode*, NDArray> env;
    for (size_t i = 0; i < inputs.size(); ++i) {
        env[main_fn->params[i].get()] = inputs[i];
    }
    VarBinding sym_env;
    // Bind function-level symbolic vars from input shapes.
    for (size_t i = 0; i < inputs.size(); ++i) {
        const auto* tensor = asTensor(main_fn->params[i]->structInfo());
        for (size_t d = 0; d < tensor->shape->size(); ++d) {
            if ((*tensor->shape)[d]->kind() == ExprKind::kVar) {
                sym_env[static_cast<const ::relax::VarNode*>(
                    (*tensor->shape)[d].get())] = inputs[i].shape()[d];
            }
        }
    }
    NDArray result;
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            RELAX_ICHECK(isOpCall(binding.value, "relax.call_tir"))
                << "evalMain expects call_tir bindings";
            const auto* call =
                static_cast<const CallNode*>(binding.value.get());
            const auto* gv =
                static_cast<const GlobalVarNode*>(call->args[0].get());
            tir::PrimFunc callee = module->getTIRFunc(gv->name);
            int64_t num_sym = 0;
            if (auto it = call->attrs.find("num_sym_args");
                it != call->attrs.end()) {
                num_sym = std::get<int64_t>(it->second);
            }
            std::vector<NDArray> args;
            for (size_t i = 1; i < call->args.size() - num_sym; ++i) {
                args.push_back(env.at(
                    static_cast<const VarNode*>(call->args[i].get())));
            }
            // Output allocation from the annotation.
            const auto* out_info = asTensor(call->sinfoArgs[0]);
            std::vector<int64_t> out_shape;
            for (const auto& dim : *out_info->shape) {
                out_shape.push_back(evalInt(dim, sym_env));
            }
            NDArray out = NDArray::zeros(out_shape, out_info->dtype);
            args.push_back(out);
            std::vector<int64_t> sym_args;
            for (size_t i = call->args.size() - num_sym;
                 i < call->args.size(); ++i) {
                const auto* pv = static_cast<const PrimValueNode*>(
                    call->args[i].get());
                sym_args.push_back(evalInt(pv->value, sym_env));
            }
            tir::run(callee, args, sym_args);
            env[binding.var.get()] = out;
            result = out;
        }
    }
    return result;
}

std::vector<NDArray>
makeDecodeInputs(int64_t rows, int64_t k_dim, int64_t n_out)
{
    NDArray x = NDArray::zeros({rows, k_dim}, DataType::f32());
    for (int64_t i = 0; i < x.numel(); ++i) {
        x.set(i, 0.25 * (double)((i * 7) % 5) - 0.5);
    }
    NDArray wdata = NDArray::zeros({k_dim, (n_out + 7) / 8},
                                   DataType::u32());
    for (int64_t i = 0; i < wdata.numel(); ++i) {
        uint64_t word = 0;
        for (uint64_t j = 0; j < 8; ++j) {
            word |= ((i * 31 + j * 5) % 16) << (4 * j);
        }
        wdata.set(i, (double)word);
    }
    NDArray wscale = NDArray::zeros({k_dim, (n_out + 31) / 32},
                                    DataType::f32());
    for (int64_t i = 0; i < wscale.numel(); ++i) {
        wscale.set(i, 0.5 + 0.125 * (double)(i % 3));
    }
    return {x, wdata, wscale};
}

TEST(FusionPipelineTest, Figure9DecodeMatmulFusion)
{
    const int64_t k_dim = 16, n_out = 32;
    auto module = buildDecodeMatmulModule(k_dim, n_out);

    // Stage 0 reference result (decode + matmul as separate kernels).
    module = legalizeOpsPass().run(module);
    auto inputs = makeDecodeInputs(/*rows=*/3, k_dim, n_out);
    NDArray reference = evalMain(module, inputs);

    // Compute pattern analysis classifies decode Injective, matmul OEF.
    module = annotateTIRPatternsPass().run(module);
    EXPECT_EQ(module->getTIRFunc("decode_q4")->attrs.at(
                  tir::kComputePatternAttr),
              "Injective");
    std::string mm_name;
    for (const auto& [name, func] : module->tirFuncs()) {
        if (name.rfind("matmul", 0) == 0) mm_name = name;
    }
    ASSERT_FALSE(mm_name.empty());
    EXPECT_EQ(module->getTIRFunc(mm_name)->attrs.at(
                  tir::kComputePatternAttr),
              "OutputEwiseFusible");

    // FuseOps groups them into a subgraph function.
    module = fuseOpsPass().run(module);
    wellFormed(module);
    Function fused;
    std::string fused_name;
    for (const auto& [name, func] : module->functions()) {
        if (func->attrs.count("primitive")) {
            fused = func;
            fused_name = name;
        }
    }
    ASSERT_NE(fused, nullptr) << "FuseOps did not create a subgraph";
    EXPECT_NE(fused_name.find("fused"), std::string::npos);
    EXPECT_NE(fused_name.find("decode_q4"), std::string::npos);

    // FuseTensorIR merges the two kernels and inlines the call.
    module = fuseTensorIRPass().run(module);
    wellFormed(module);
    EXPECT_EQ(module->getFunction(fused_name), nullptr);
    tir::PrimFunc merged = module->getTIRFunc(fused_name);
    ASSERT_NE(merged, nullptr);
    // The merged kernel holds the intermediate decode output as a local
    // allocation (Fig. 9's alloc_buffer W).
    EXPECT_FALSE(tir::collectAllocations(merged->body).empty());

    // main now calls the merged kernel directly.
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    size_t call_count = 0;
    for (const auto& block : seq->blocks) {
        for (const auto& binding : block->bindings) {
            EXPECT_TRUE(isOpCall(binding.value, "relax.call_tir"));
            ++call_count;
        }
    }
    EXPECT_EQ(call_count, 1u);

    // Fused execution matches the unfused reference bit-for-bit.
    NDArray fused_result = evalMain(module, inputs);
    EXPECT_EQ(fused_result.data(), reference.data());
}

TEST(FusionPipelineTest, Figure8AddReluFusionWithSymbolicParam)
{
    // flatten(x) -> add -> relu over (2n,): the fused function needs the
    // extra symbolic Shape parameter of Fig. 8.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(2)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::flatten(x));
    Var lv1 = builder.emit(op::add(lv0, lv0));
    Var out = builder.emitOutput(op::relu(lv1));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));

    module = legalizeOpsPass().run(module);
    module = annotateTIRPatternsPass().run(module);

    // Reference before fusion.
    NDArray input = NDArray::fromVector({3, 2}, DataType::f32(),
                                        {-1, 2, -3, 4, -5, 6});
    NDArray reference = evalMain(module, {input});

    module = fuseOpsPass().run(module);
    wellFormed(module);

    // One fused subgraph containing add + relu (flatten is injective and
    // may fuse in too); find it and check for a Shape param when needed.
    Function fused;
    for (const auto& [name, func] : module->functions()) {
        if (func->attrs.count("primitive")) fused = func;
    }
    ASSERT_NE(fused, nullptr);

    module = fuseTensorIRPass().run(module);
    wellFormed(module);
    NDArray fused_result = evalMain(module, {input});
    EXPECT_EQ(fused_result.data(), reference.data());
    // Expected values: relu(2 * flatten(x)).
    EXPECT_EQ(fused_result.data(),
              (std::vector<double>{0, 4, 0, 8, 0, 12}));
}

TEST(FusionPipelineTest, MatmulEpilogueFusion)
{
    // matmul + relu: the classic OutputEwiseFusible + ElementWise case.
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(4), intImm(4)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var mm = builder.emit(op::matmul(x, w));
    Var out = builder.emitOutput(op::relu(mm));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));

    module = legalizeOpsPass().run(module);
    module = annotateTIRPatternsPass().run(module);

    NDArray xv = NDArray::zeros({2, 4}, DataType::f32());
    NDArray wv = NDArray::zeros({4, 4}, DataType::f32());
    for (int64_t i = 0; i < 8; ++i) xv.set(i, (double)(i % 3) - 1.0);
    for (int64_t i = 0; i < 16; ++i) wv.set(i, (double)(i % 5) - 2.0);
    NDArray reference = evalMain(module, {xv, wv});

    module = fuseOpsPass().run(module);
    module = fuseTensorIRPass().run(module);
    wellFormed(module);
    // Exactly one kernel call remains.
    const auto* seq = static_cast<const SeqExprNode*>(
        module->getFunction("main")->body.get());
    size_t calls = 0;
    for (const auto& block : seq->blocks) calls += block->bindings.size();
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(evalMain(module, {xv, wv}).data(), reference.data());
}

TEST(FusionPipelineTest, TwoAnchorsDoNotFuse)
{
    // matmul -> matmul must stay two kernels (one anchor per group).
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    Var w1 = makeVar("w1", tensorSInfo({intImm(4), intImm(4)},
                                       DataType::f32()));
    Var w2 = makeVar("w2", tensorSInfo({intImm(4), intImm(4)},
                                       DataType::f32()));
    builder.beginDataflowBlock();
    Var mm1 = builder.emit(op::matmul(x, w1));
    Var out = builder.emitOutput(op::matmul(mm1, w2));
    builder.endBlock();
    module->addFunction(
        "main", makeFunction({x, w1, w2}, builder.finish(out),
                             out->structInfo()));
    module = legalizeOpsPass().run(module);
    module = annotateTIRPatternsPass().run(module);
    module = fuseOpsPass().run(module);
    for (const auto& [name, func] : module->functions()) {
        EXPECT_FALSE(func->attrs.count("primitive"))
            << "two matmuls must not fuse";
    }
}

} // namespace
} // namespace passes
} // namespace relax
