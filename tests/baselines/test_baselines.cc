/**
 * @file
 * Sanity tests for the analytic baseline models: the framework traits
 * must yield the architectural relationships the paper's evaluation
 * depends on (batching economics, quantization wins, backend support,
 * KV-cache policies).
 */
#include <gtest/gtest.h>

#include "baselines/baselines.h"

namespace relax {
namespace baselines {
namespace {

using frontend::LlamaConfig;
using frontend::Quant;

DecodeWorkload
workload(int64_t batch, int64_t ctx = 128)
{
    return {LlamaConfig::llama3_8b(), batch, ctx};
}

TEST(BaselineTest, PerSequenceLatencyImprovesWithBatching)
{
    // Total step latency grows with batch, but per-sequence cost drops:
    // weights are read once for everyone (the vLLM economics).
    auto spec = device::rtx4090();
    auto traits = vllm();
    double b1 = decodeStepUs(workload(1), spec, traits);
    double b16 = decodeStepUs(workload(16), spec, traits);
    double b64 = decodeStepUs(workload(64), spec, traits);
    // Weights are read once for the whole batch, so per-sequence latency
    // collapses; total step latency eventually grows with batch.
    EXPECT_LT(b16 / 16.0, b1 / 4.0);
    EXPECT_GT(b64, b16);
}

TEST(BaselineTest, QuantizationCutsMemoryBoundLatency)
{
    auto spec = device::samsungS23();
    auto traits = llamaCpp();
    DecodeWorkload fp16{LlamaConfig::llama2_7b(), 1, 128};
    DecodeWorkload q4{LlamaConfig::llama2_7b().withQuant(Quant::kQ4), 1,
                      128};
    double t_fp16 = decodeStepUs(fp16, spec, traits);
    double t_q4 = decodeStepUs(q4, spec, traits);
    // ~4x fewer weight bytes -> between 2x and 4x faster on a
    // bandwidth-bound device.
    EXPECT_GT(t_fp16 / t_q4, 2.0);
    EXPECT_LT(t_fp16 / t_q4, 4.5);
}

TEST(BaselineTest, EagerKvReallocGrowsWithContext)
{
    auto spec = device::rtx4090();
    double short_ctx = decodeStepUs(workload(16, 128), spec,
                                    hfTransformers());
    double long_ctx = decodeStepUs(workload(16, 2048), spec,
                                   hfTransformers());
    // torch.cat copies the whole cache: long contexts cost visibly more.
    EXPECT_GT(long_ctx, short_ctx * 1.05);
    // In-place caches grow much more slowly.
    double vllm_short = decodeStepUs(workload(16, 128), spec, vllm());
    double vllm_long = decodeStepUs(workload(16, 2048), spec, vllm());
    EXPECT_LT(vllm_long - vllm_short, long_ctx - short_ctx);
}

TEST(BaselineTest, StaticCachePaysPaddingAtSmallContext)
{
    auto spec = device::rtx4090();
    // At ctx 64, torch.compile still reads its full static budget.
    double compiled = decodeStepUs(workload(32, 64), spec,
                                   hfTorchCompile());
    double paged = decodeStepUs(workload(32, 64), spec, vllm());
    EXPECT_GT(compiled, paged);
}

TEST(BaselineTest, BackendSupportMatrix)
{
    EXPECT_TRUE(supportsBackend(hfTransformers(), device::appleM2Ultra()));
    EXPECT_FALSE(supportsBackend(vllm(), device::appleM2Ultra()));
    EXPECT_FALSE(supportsBackend(hfTorchCompile(),
                                 device::appleM2Ultra()));
    EXPECT_TRUE(supportsBackend(llamaCpp(), device::appleM2Ultra()));
    EXPECT_TRUE(supportsBackend(vllm(), device::rtx4090()));
}

TEST(BaselineTest, CpuFallbackIsMuchSlowerThanGpuPath)
{
    auto spec = device::samsungS24();
    auto gpu_less = llamaCpp();
    gpu_less.cpuFallback = true;
    DecodeWorkload q4{LlamaConfig::llama2_7b().withQuant(Quant::kQ4), 1,
                      128};
    double cpu = decodeStepUs(q4, spec, gpu_less);
    auto on_gpu = llamaCpp();
    double gpu = decodeStepUs(q4, spec, on_gpu);
    EXPECT_GT(cpu, gpu * 1.3); // the Fig. 18 gap mechanism
}

TEST(BaselineTest, PrefillScalesWithTokens)
{
    auto spec = device::rtx4090();
    auto traits = hfTransformers();
    auto model = LlamaConfig::llama3_8b();
    double p128 = prefillUs(model, 1, 128, spec, traits);
    double p1024 = prefillUs(model, 1, 1024, spec, traits);
    EXPECT_GT(p1024, 2.0 * p128);
}

} // namespace
} // namespace baselines
} // namespace relax
