/**
 * @file
 * Tests for the symbolic analyzer: canonical simplification, equality and
 * inequality proofs, bounds, and a randomized property suite checking that
 * simplification preserves evaluation.
 */
#include <gtest/gtest.h>

#include <random>

#include "arith/analyzer.h"
#include "arith/structural.h"
#include "arith/substitute.h"

namespace relax {
namespace {

TEST(AnalyzerTest, SimplifyMergesLikeTerms)
{
    Analyzer analyzer;
    Var n = var("n");
    // n*2 + n*2 == 4n
    PrimExpr e = add(mul(n, intImm(2)), mul(intImm(2), n));
    EXPECT_EQ(toString(analyzer.simplify(e)), "4 * n");
    // n + n - 2n == 0
    PrimExpr z = sub(add(n, n), mul(intImm(2), n));
    EXPECT_TRUE(isConstInt(analyzer.simplify(z), 0));
}

TEST(AnalyzerTest, SimplifyExpandsProducts)
{
    Analyzer analyzer;
    Var n = var("n");
    // (n + 1) * 4 - 4n == 4
    PrimExpr e = sub(mul(add(n, intImm(1)), intImm(4)), mul(intImm(4), n));
    EXPECT_TRUE(isConstInt(analyzer.simplify(e), 4));
}

TEST(AnalyzerTest, ProveEqualPaperExamples)
{
    Analyzer analyzer;
    Var n = var("n");
    // Figure 3: reshape (n,2,2) -> (n,4) -> flatten (4n,):
    // total elements n*2*2 == n*4 == 4n.
    EXPECT_TRUE(analyzer.proveEqual(mul(mul(n, intImm(2)), intImm(2)),
                                    mul(n, intImm(4))));
    // Figure 8: flatten of (n,2) has 2n elements.
    EXPECT_TRUE(analyzer.proveEqual(mul(n, intImm(2)), mul(intImm(2), n)));
    EXPECT_FALSE(analyzer.proveEqual(mul(n, intImm(2)), mul(intImm(3), n)));
}

TEST(AnalyzerTest, ProveEqualAcrossDistributedForms)
{
    Analyzer analyzer;
    Var n = var("n");
    Var m = var("m");
    // (n + m)^2 == n^2 + 2nm + m^2
    PrimExpr lhs = mul(add(n, m), add(n, m));
    PrimExpr rhs = add(add(mul(n, n), mul(mul(intImm(2), n), m)), mul(m, m));
    EXPECT_TRUE(analyzer.proveEqual(lhs, rhs));
}

TEST(AnalyzerTest, FloorDivExactDivision)
{
    Analyzer analyzer;
    Var n = var("n");
    // (8n) / 4 == 2n
    PrimExpr e = floordiv(mul(intImm(8), n), intImm(4));
    EXPECT_EQ(toString(analyzer.simplify(e)), "2 * n");
    // (8n) % 4 == 0
    EXPECT_TRUE(isConstInt(analyzer.simplify(floormod(mul(intImm(8), n),
                                                      intImm(4))),
                           0));
    // (n) / 4 stays opaque but is stable.
    PrimExpr opaque = floordiv(n, intImm(4));
    EXPECT_TRUE(structuralEqual(analyzer.simplify(opaque),
                                analyzer.simplify(opaque)));
}

TEST(AnalyzerTest, OpaqueAtomsCompareStructurally)
{
    Analyzer analyzer;
    Var n = var("n");
    // min(n, 8) * 2 == 2 * min(n, 8)
    PrimExpr a = mul(minExpr(n, intImm(8)), intImm(2));
    PrimExpr b = mul(intImm(2), minExpr(n, intImm(8)));
    EXPECT_TRUE(analyzer.proveEqual(a, b));
}

TEST(AnalyzerTest, BoundsFromVarRanges)
{
    Analyzer analyzer;
    Var n = var("n");
    analyzer.bindVarBound(n, 1, 2048);
    ConstIntBound bound = analyzer.constIntBound(mul(n, intImm(4)));
    EXPECT_EQ(bound.minValue, 4);
    EXPECT_EQ(bound.maxValue, 8192);

    // Upper bound used by static memory planning (§4.3).
    auto ub = analyzer.upperBound(mul(add(n, intImm(1)), intImm(2)));
    ASSERT_TRUE(ub.has_value());
    EXPECT_EQ(*ub, 4098);

    Var unbounded = var("u");
    EXPECT_FALSE(analyzer.upperBound(unbounded).has_value());
}

TEST(AnalyzerTest, ProveInequalities)
{
    Analyzer analyzer;
    Var n = var("n");
    analyzer.bindVarBound(n, 1, ConstIntBound::kPosInf);
    EXPECT_TRUE(analyzer.proveNonNegative(sub(n, intImm(1))));
    EXPECT_TRUE(analyzer.proveGE(mul(n, intImm(4)), mul(n, intImm(2))));
    EXPECT_TRUE(analyzer.proveGT(add(n, intImm(1)), n));
    EXPECT_FALSE(analyzer.proveGE(n, mul(n, intImm(2))));
}

TEST(AnalyzerTest, MinMaxResolutionWithBounds)
{
    Analyzer analyzer;
    Var n = var("n");
    analyzer.bindVarBound(n, 1, 8);
    // min(n, 100) == n when n <= 8.
    PrimExpr e = minExpr(n, intImm(100));
    EXPECT_EQ(toString(analyzer.simplify(e)), "n");
    // max(n, 100) == 100.
    EXPECT_TRUE(isConstInt(analyzer.simplify(maxExpr(n, intImm(100))), 100));
}

TEST(AnalyzerTest, BindVarValueSubstitutes)
{
    Analyzer analyzer;
    Var n = var("n");
    Var m = var("m");
    analyzer.bindVarValue(m, mul(n, intImm(2)));
    // m + n == 3n under m := 2n.
    EXPECT_TRUE(analyzer.proveEqual(add(m, n), mul(intImm(3), n)));
}

TEST(AnalyzerTest, FloorModBound)
{
    Analyzer analyzer;
    Var n = var("n");
    ConstIntBound bound = analyzer.constIntBound(floormod(n, intImm(8)));
    EXPECT_EQ(bound.minValue, 0);
    EXPECT_EQ(bound.maxValue, 7);
}

// ---------------------------------------------------------------------------
// Property suite: random expressions evaluate identically before and after
// simplification, and proveEqual(e, simplify(e)) holds.
// ---------------------------------------------------------------------------

class SimplifyPropertyTest : public ::testing::TestWithParam<int>
{
};

PrimExpr
randomExpr(std::mt19937& rng, const std::vector<Var>& vars, int depth)
{
    std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 7);
    switch (pick(rng)) {
      case 0: {
        std::uniform_int_distribution<int64_t> c(-6, 6);
        return intImm(c(rng));
      }
      case 1: {
        std::uniform_int_distribution<size_t> v(0, vars.size() - 1);
        return vars[v(rng)];
      }
      case 2:
        return add(randomExpr(rng, vars, depth - 1),
                   randomExpr(rng, vars, depth - 1));
      case 3:
        return sub(randomExpr(rng, vars, depth - 1),
                   randomExpr(rng, vars, depth - 1));
      case 4:
        return mul(randomExpr(rng, vars, depth - 1),
                   randomExpr(rng, vars, depth - 1));
      case 5:
        return minExpr(randomExpr(rng, vars, depth - 1),
                       randomExpr(rng, vars, depth - 1));
      case 6:
        return maxExpr(randomExpr(rng, vars, depth - 1),
                       randomExpr(rng, vars, depth - 1));
      default: {
        std::uniform_int_distribution<int64_t> c(1, 5);
        return floordiv(randomExpr(rng, vars, depth - 1), intImm(c(rng)));
      }
    }
}

TEST_P(SimplifyPropertyTest, SimplifyPreservesEvaluation)
{
    std::mt19937 rng(GetParam());
    Var n = var("n");
    Var m = var("m");
    std::vector<Var> vars{n, m};
    Analyzer analyzer;

    for (int trial = 0; trial < 40; ++trial) {
        PrimExpr e = randomExpr(rng, vars, 4);
        PrimExpr s = analyzer.simplify(e);
        EXPECT_TRUE(analyzer.proveEqual(e, s))
            << "e=" << toString(e) << " s=" << toString(s);
        std::uniform_int_distribution<int64_t> val(-10, 10);
        for (int i = 0; i < 5; ++i) {
            VarBinding binding{{n.get(), val(rng)}, {m.get(), val(rng)}};
            auto ve = tryEvalInt(e, binding);
            auto vs = tryEvalInt(s, binding);
            ASSERT_TRUE(ve.has_value());
            ASSERT_TRUE(vs.has_value());
            EXPECT_EQ(*ve, *vs)
                << "e=" << toString(e) << " s=" << toString(s)
                << " n=" << binding[n.get()] << " m=" << binding[m.get()];
        }
    }
}

TEST_P(SimplifyPropertyTest, BoundsContainEvaluation)
{
    std::mt19937 rng(GetParam() + 1000);
    Var n = var("n");
    Var m = var("m");
    std::vector<Var> vars{n, m};
    Analyzer analyzer;
    analyzer.bindVarBound(n, 0, 16);
    analyzer.bindVarBound(m, 1, 8);

    for (int trial = 0; trial < 40; ++trial) {
        PrimExpr e = randomExpr(rng, vars, 3);
        ConstIntBound bound = analyzer.constIntBound(e);
        std::uniform_int_distribution<int64_t> vn(0, 16);
        std::uniform_int_distribution<int64_t> vm(1, 8);
        for (int i = 0; i < 5; ++i) {
            VarBinding binding{{n.get(), vn(rng)}, {m.get(), vm(rng)}};
            auto value = tryEvalInt(e, binding);
            ASSERT_TRUE(value.has_value());
            EXPECT_GE(*value, bound.minValue) << toString(e);
            EXPECT_LE(*value, bound.maxValue) << toString(e);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
} // namespace relax
