/**
 * @file
 * Unit tests for the scalar expression AST: factories, constant folding,
 * printing, structural equality/hash, substitution and evaluation.
 */
#include <gtest/gtest.h>

#include "arith/expr.h"
#include "arith/structural.h"
#include "arith/substitute.h"

namespace relax {
namespace {

TEST(DataTypeTest, RoundTripsText)
{
    EXPECT_EQ(DataType::f16().toString(), "f16");
    EXPECT_EQ(DataType::i64().toString(), "i64");
    EXPECT_EQ(DataType::u32().toString(), "u32");
    EXPECT_EQ(DataType::boolean().toString(), "bool");
    EXPECT_EQ(DataType::fromString("f32"), DataType::f32());
    EXPECT_EQ(DataType::fromString("u4"), DataType::u4());
    EXPECT_EQ(DataType::fromString("bool"), DataType::boolean());
    EXPECT_THROW(DataType::fromString("x8"), TypeError);
}

TEST(DataTypeTest, ByteSizes)
{
    EXPECT_EQ(DataType::f16().bytes(), 2);
    EXPECT_EQ(DataType::f32().bytes(), 4);
    EXPECT_EQ(DataType::u4().bytes(), 1); // rounds up to one byte per scalar
    EXPECT_EQ(DataType::i64().bytes(), 8);
}

TEST(ExprTest, ConstantFoldingInFactories)
{
    PrimExpr e = add(intImm(3), intImm(4));
    ASSERT_NE(asIntImm(e), nullptr);
    EXPECT_EQ(*asIntImm(e), 7);

    EXPECT_EQ(*asIntImm(mul(intImm(6), intImm(7))), 42);
    EXPECT_EQ(*asIntImm(floordiv(intImm(-7), intImm(2))), -4);
    EXPECT_EQ(*asIntImm(floormod(intImm(-7), intImm(2))), 1);
    EXPECT_EQ(*asIntImm(minExpr(intImm(3), intImm(-5))), -5);
    EXPECT_EQ(*asIntImm(maxExpr(intImm(3), intImm(-5))), 3);
}

TEST(ExprTest, IdentityRules)
{
    Var n = var("n");
    EXPECT_EQ(add(n, intImm(0)).get(), n.get());
    EXPECT_EQ(mul(n, intImm(1)).get(), n.get());
    EXPECT_TRUE(isConstInt(mul(n, intImm(0)), 0));
    EXPECT_EQ(sub(n, intImm(0)).get(), n.get());
    EXPECT_EQ(floordiv(n, intImm(1)).get(), n.get());
    EXPECT_TRUE(isConstInt(floormod(n, intImm(1)), 0));
}

TEST(ExprTest, PrintingMatchesPaperNotation)
{
    Var n = var("n");
    EXPECT_EQ(toString(mul(n, intImm(4))), "n * 4");
    EXPECT_EQ(toString(add(mul(intImm(2), n), intImm(1))), "2 * n + 1");
    EXPECT_EQ(toString(mul(add(n, intImm(1)), intImm(4))), "(n + 1) * 4");
    EXPECT_EQ(toString(std::vector<PrimExpr>{n, intImm(4)}), "(n, 4)");
    EXPECT_EQ(toString(minExpr(n, intImm(8))), "min(n, 8)");
    EXPECT_EQ(toString(floordiv(n, intImm(8))), "n // 8");
}

TEST(ExprTest, VarsAreIdentityDistinct)
{
    Var n1 = var("n");
    Var n2 = var("n");
    EXPECT_FALSE(structuralEqual(n1, n2));
    EXPECT_TRUE(structuralEqual(n1, n1));
}

TEST(StructuralTest, EqualAndHashAgree)
{
    Var n = var("n");
    Var m = var("m");
    PrimExpr a = add(mul(n, intImm(4)), m);
    PrimExpr b = add(mul(n, intImm(4)), m);
    PrimExpr c = add(mul(n, intImm(5)), m);
    EXPECT_TRUE(structuralEqual(a, b));
    EXPECT_EQ(structuralHash(a), structuralHash(b));
    EXPECT_FALSE(structuralEqual(a, c));
}

TEST(StructuralTest, DistinguishesKinds)
{
    Var n = var("n");
    EXPECT_FALSE(structuralEqual(add(n, intImm(1)), sub(n, intImm(1))));
    EXPECT_FALSE(structuralEqual(minExpr(n, intImm(1)), maxExpr(n, intImm(1))));
    EXPECT_FALSE(
        structuralEqual(intImm(1, DataType::i64()), intImm(1, DataType::i32())));
}

TEST(SubstituteTest, ReplacesVariables)
{
    Var n = var("n");
    Var m = var("m");
    PrimExpr e = add(mul(n, intImm(4)), m);
    VarMap map;
    map[n.get()] = intImm(3);
    PrimExpr result = substitute(e, map);
    // 3*4 + m folds the product.
    EXPECT_EQ(toString(result), "12 + m");
    map[m.get()] = intImm(5);
    EXPECT_EQ(*asIntImm(substitute(e, map)), 17);
}

TEST(SubstituteTest, SharesUnchangedSubtrees)
{
    Var n = var("n");
    Var m = var("m");
    PrimExpr e = add(n, m);
    VarMap empty;
    EXPECT_EQ(substitute(e, empty).get(), e.get());
}

TEST(SubstituteTest, CollectVarsFindsAll)
{
    Var n = var("n");
    Var m = var("m");
    PrimExpr e = add(mul(n, intImm(2)), minExpr(m, n));
    std::unordered_set<const VarNode*> vars;
    collectVars(e, &vars);
    EXPECT_EQ(vars.size(), 2u);
    EXPECT_TRUE(vars.count(n.get()));
    EXPECT_TRUE(vars.count(m.get()));
}

TEST(EvalTest, EvaluatesArithmetic)
{
    Var n = var("n");
    VarBinding binding{{n.get(), 7}};
    EXPECT_EQ(evalInt(add(mul(n, intImm(4)), intImm(2)), binding), 30);
    EXPECT_EQ(evalInt(floordiv(n, intImm(2)), binding), 3);
    EXPECT_EQ(evalInt(floormod(n, intImm(4)), binding), 3);
    EXPECT_EQ(evalInt(minExpr(n, intImm(5)), binding), 5);
    EXPECT_EQ(evalInt(maxExpr(n, intImm(5)), binding), 7);
    EXPECT_EQ(evalInt(select(gt(n, intImm(0)), intImm(1), intImm(-1)), binding),
              1);
}

TEST(EvalTest, UnboundVariableFails)
{
    Var n = var("n");
    VarBinding binding;
    EXPECT_FALSE(tryEvalInt(n, binding).has_value());
    EXPECT_THROW(evalInt(n, binding), ShapeError);
}

TEST(EvalTest, ComparisonsAndLogic)
{
    Var n = var("n");
    VarBinding binding{{n.get(), 4}};
    EXPECT_EQ(evalInt(eq(n, intImm(4)), binding), 1);
    EXPECT_EQ(evalInt(ne(n, intImm(4)), binding), 0);
    EXPECT_EQ(evalInt(logicalAnd(gt(n, intImm(0)), lt(n, intImm(10))),
                      binding),
              1);
    EXPECT_EQ(evalInt(logicalOr(lt(n, intImm(0)), ge(n, intImm(4))), binding),
              1);
    EXPECT_EQ(evalInt(logicalNot(gt(n, intImm(0))), binding), 0);
}

} // namespace
} // namespace relax
