/**
 * @file
 * End-to-end model tests: the tiny Llama variant compiles through the
 * full pipeline and executes correctly on real data; prefill and decode
 * are consistent; quantized models exercise the Fig. 9 fusion; and
 * optimization toggles preserve results.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "vm/vm.h"

namespace relax {
namespace frontend {
namespace {

using vm::Value;

std::shared_ptr<device::SimDevice>
hostDevice()
{
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(64) << 30;
    return std::make_shared<device::SimDevice>(spec);
}

std::vector<Value>
toValues(const NDArray& ids, const std::vector<NDArray>& caches,
         const std::vector<NDArray>& weights)
{
    std::vector<Value> args{ids};
    for (const auto& c : caches) args.emplace_back(c);
    for (const auto& w : weights) args.emplace_back(w);
    return args;
}

struct StepResult
{
    NDArray logits;
    std::vector<NDArray> caches;
};

StepResult
unpack(const Value& value, int64_t num_layers)
{
    StepResult result;
    auto tuple = std::get<vm::TupleValuePtr>(value);
    result.logits = std::get<NDArray>(tuple->fields[0]);
    for (int64_t i = 0; i < 2 * num_layers; ++i) {
        result.caches.push_back(std::get<NDArray>(tuple->fields[1 + i]));
    }
    return result;
}

TEST(LlamaTest, TinyModelPrefillsAndDecodes)
{
    LlamaConfig config = LlamaConfig::tiny();
    auto module = buildLlama(config);
    CompileOptions options;
    options.device = hostDevice()->spec();
    auto exec = compile(module, options);
    vm::VirtualMachine machine(exec, hostDevice(), /*data_mode=*/true);
    auto weights = makeLlamaWeights(config, /*with_data=*/true);

    // Prefill 3 tokens (batch 1).
    NDArray ids = NDArray::fromVector({1, 3}, DataType::i64(), {1, 2, 3});
    Value prefill_out = machine.invoke("prefill", toValues(ids, {}, weights));
    StepResult prefill = unpack(prefill_out, config.numLayers);
    EXPECT_EQ(prefill.logits.shape(),
              (std::vector<int64_t>{1, 3, config.vocabSize}));
    EXPECT_EQ(prefill.caches[0].shape(),
              (std::vector<int64_t>{1, config.numHeads, 3,
                                    config.headDim}));

    // Decode one token with the produced caches: m grows to 4.
    NDArray next = NDArray::fromVector({1, 1}, DataType::i64(), {4});
    Value decode_out =
        machine.invoke("decode", toValues(next, prefill.caches, weights));
    StepResult decode = unpack(decode_out, config.numLayers);
    EXPECT_EQ(decode.logits.shape(),
              (std::vector<int64_t>{1, 1, config.vocabSize}));
    EXPECT_EQ(decode.caches[0].shape()[2], 4);

    // Logits are finite (sanity on the numerics).
    for (int64_t i = 0; i < decode.logits.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(decode.logits.at(i)));
    }
}

TEST(LlamaTest, DecodeMatchesPrefillLastPosition)
{
    // Decoding token t with cache(prefix) must equal prefilling the full
    // prefix+t at the last position — KV-cache correctness.
    LlamaConfig config = LlamaConfig::tiny();
    CompileOptions options;
    options.device = hostDevice()->spec();
    auto exec = compile(buildLlama(config), options);
    vm::VirtualMachine machine(exec, hostDevice(), true);
    auto weights = makeLlamaWeights(config, true);

    NDArray prefix = NDArray::fromVector({1, 2}, DataType::i64(), {5, 9});
    StepResult first =
        unpack(machine.invoke("prefill", toValues(prefix, {}, weights)),
               config.numLayers);
    NDArray next = NDArray::fromVector({1, 1}, DataType::i64(), {7});
    StepResult stepped =
        unpack(machine.invoke("decode", toValues(next, first.caches,
                                                 weights)),
               config.numLayers);

    NDArray full = NDArray::fromVector({1, 3}, DataType::i64(), {5, 9, 7});
    StepResult reference =
        unpack(machine.invoke("prefill", toValues(full, {}, weights)),
               config.numLayers);

    for (int64_t v = 0; v < config.vocabSize; ++v) {
        double decoded = stepped.logits.at(v); // [0, 0, v]
        double prefilled =
            reference.logits.at(2 * config.vocabSize + v); // [0, 2, v]
        EXPECT_NEAR(decoded, prefilled, 1e-9) << "vocab " << v;
    }
}

TEST(LlamaTest, BatchedDecodeWorks)
{
    LlamaConfig config = LlamaConfig::tiny();
    CompileOptions options;
    options.device = hostDevice()->spec();
    auto exec = compile(buildLlama(config), options);
    vm::VirtualMachine machine(exec, hostDevice(), true);
    auto weights = makeLlamaWeights(config, true);

    // Batch 2 prefill then decode: both dynamic dims (b, n/m) exercised.
    NDArray ids = NDArray::fromVector({2, 2}, DataType::i64(),
                                      {1, 2, 3, 4});
    StepResult prefill =
        unpack(machine.invoke("prefill", toValues(ids, {}, weights)),
               config.numLayers);
    NDArray next = NDArray::fromVector({2, 1}, DataType::i64(), {5, 6});
    StepResult decode =
        unpack(machine.invoke("decode", toValues(next, prefill.caches,
                                                 weights)),
               config.numLayers);
    EXPECT_EQ(decode.logits.shape(),
              (std::vector<int64_t>{2, 1, config.vocabSize}));
}

TEST(LlamaTest, QuantizedModelFusesDecodeIntoMatmul)
{
    LlamaConfig config = LlamaConfig::tiny().withQuant(Quant::kQ4);
    // Use dims compatible with q4 packing (multiples of 8).
    config.hiddenSize = 8;
    config.ffnSize = 16;
    auto module = buildLlama(config);
    CompileOptions options;
    options.device = hostDevice()->spec();
    auto exec = compile(module, options);
    // Every decode_q4 kernel is gone as a standalone launch: fused into
    // its consumer matmul (Fig. 9 at model scale).
    bool has_fused = false;
    for (const auto& [name, func] : exec->module->tirFuncs()) {
        if (name.find("fused") != std::string::npos &&
            name.find("decode_q4") != std::string::npos) {
            has_fused = true;
        }
    }
    EXPECT_TRUE(has_fused);

    // And it still runs.
    vm::VirtualMachine machine(exec, hostDevice(), true);
    auto weights = makeLlamaWeights(config, true);
    NDArray ids = NDArray::fromVector({1, 2}, DataType::i64(), {1, 2});
    Value out = machine.invoke("prefill", toValues(ids, {}, weights));
    StepResult result = unpack(out, config.numLayers);
    for (int64_t i = 0; i < result.logits.numel(); ++i) {
        EXPECT_TRUE(std::isfinite(result.logits.at(i)));
    }
}

TEST(LlamaTest, OptimizationTogglesPreserveResults)
{
    LlamaConfig config = LlamaConfig::tiny();
    auto weights = makeLlamaWeights(config, true);
    NDArray ids = NDArray::fromVector({1, 2}, DataType::i64(), {3, 1});

    auto run = [&](bool fusion, bool planning) {
        CompileOptions options;
        options.device = hostDevice()->spec();
        options.enableFusion = fusion;
        options.enableMemoryPlanning = planning;
        auto exec = compile(buildLlama(config), options);
        vm::VirtualMachine machine(exec, hostDevice(), true);
        return unpack(machine.invoke("prefill",
                                     toValues(ids, {}, weights)),
                      config.numLayers)
            .logits;
    };
    NDArray base = run(true, true);
    NDArray no_fusion = run(false, true);
    NDArray no_planning = run(true, false);
    for (int64_t i = 0; i < base.numel(); ++i) {
        EXPECT_NEAR(base.at(i), no_fusion.at(i), 1e-9);
        EXPECT_NEAR(base.at(i), no_planning.at(i), 1e-9);
    }
}

TEST(LlamaTest, ConfigsReportPlausibleWeightSizes)
{
    // Llama3-8B fp16 ~ 16 GB; q4 ~ 4.5 GB.
    double fp16_gb = (double)LlamaConfig::llama3_8b().weightBytes() / 1e9;
    EXPECT_GT(fp16_gb, 13.0);
    EXPECT_LT(fp16_gb, 18.0);
    double q4_gb = (double)LlamaConfig::llama3_8b()
                       .withQuant(Quant::kQ4)
                       .weightBytes() /
                   1e9;
    EXPECT_GT(q4_gb, 3.5);
    EXPECT_LT(q4_gb, 6.0);
}

} // namespace
} // namespace frontend
} // namespace relax
