/**
 * @file
 * Interconnect cost model and DeviceGroup semantics: the ring
 * all-reduce/all-gather formulas, the clock-merge rule (a collective is
 * a barrier plus priced transfer on every member), per-device trace
 * lanes (pid = device index), and the interconnect registry.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "device/interconnect.h"

namespace relax {
namespace device {
namespace {

TEST(InterconnectTest, RingAllReduceCostFormula)
{
    InterconnectSpec link;
    link.linkBandwidthGBs = 100.0; // 1e5 bytes per us
    link.linkLatencyUs = 2.0;

    // N=4, 1 MB payload: 2*(3/4)*1e6/1e5 = 15 us transfer + 6 hops * 2 us.
    EXPECT_DOUBLE_EQ(link.allReduceUs(4, 1e6), 15.0 + 12.0);
    // N=2: 2*(1/2)*1e6/1e5 = 10 us + 2 hops * 2 us.
    EXPECT_DOUBLE_EQ(link.allReduceUs(2, 1e6), 10.0 + 4.0);
    // A single device never pays for collectives.
    EXPECT_DOUBLE_EQ(link.allReduceUs(1, 1e6), 0.0);
    // Zero payload still pays hop latency (the latency floor).
    EXPECT_DOUBLE_EQ(link.allReduceUs(4, 0.0), 12.0);
}

TEST(InterconnectTest, RingAllGatherCostFormula)
{
    InterconnectSpec link;
    link.linkBandwidthGBs = 100.0;
    link.linkLatencyUs = 2.0;

    // N=4 gathering a full 1 MB: (3/4)*1e6/1e5 = 7.5 us + 3 hops * 2 us.
    EXPECT_DOUBLE_EQ(link.allGatherUs(4, 1e6), 7.5 + 6.0);
    EXPECT_DOUBLE_EQ(link.allGatherUs(1, 1e6), 0.0);
}

TEST(InterconnectTest, MoreBandwidthNeverCostsMore)
{
    InterconnectSpec fast = nvlink();
    InterconnectSpec slow = pcieGen4();
    for (int n : {2, 4, 8}) {
        EXPECT_LT(fast.allReduceUs(n, 1 << 20),
                  slow.allReduceUs(n, 1 << 20));
    }
}

TEST(InterconnectTest, RegistryRoundTripsAndRejectsUnknown)
{
    EXPECT_EQ(interconnectByName("nvlink").name, "nvlink");
    EXPECT_EQ(interconnectByName("pcie_gen4").name, "pcie_gen4");
    EXPECT_DOUBLE_EQ(nvlink().linkBandwidthGBs,
                     interconnectByName("nvlink").linkBandwidthGBs);
    try {
        interconnectByName("smoke_signals");
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        EXPECT_NE(std::string(e.what()).find("unknown interconnect"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("nvlink"), std::string::npos);
    }
}

TEST(DeviceGroupTest, CollectiveMergesClocksAndAddsLinkTime)
{
    DeviceSpec spec = rtx4090();
    DeviceGroup group(spec, 4);
    ASSERT_EQ(group.size(), 4);

    // Skew the member clocks, then all-reduce: every clock must land on
    // max(shard finish) + collective time (the clock-merge rule).
    group.device(0).hostOverhead(10.0);
    group.device(1).hostOverhead(40.0);
    group.device(2).hostOverhead(25.0);
    double payload = 1e6;
    double latency = group.allReduce(payload);
    EXPECT_DOUBLE_EQ(latency, group.link().allReduceUs(4, payload));
    EXPECT_GT(latency, 0.0);
    for (int i = 0; i < group.size(); ++i) {
        EXPECT_DOUBLE_EQ(group.device(i).clockUs(), 40.0 + latency);
    }
    EXPECT_DOUBLE_EQ(group.clockUs(), 40.0 + latency);
    EXPECT_EQ(group.collectiveCount(), 1);
    EXPECT_DOUBLE_EQ(group.collectiveUs(), latency);
    EXPECT_DOUBLE_EQ(group.collectiveBytes(), payload);
}

TEST(DeviceGroupTest, SingleMemberGroupCollectivesAreFree)
{
    DeviceGroup group(rtx4090(), 1);
    group.device(0).hostOverhead(5.0);
    EXPECT_DOUBLE_EQ(group.allReduce(1e9), 0.0);
    EXPECT_DOUBLE_EQ(group.device(0).clockUs(), 5.0);
    EXPECT_EQ(group.collectiveCount(), 1);
    EXPECT_DOUBLE_EQ(group.collectiveUs(), 0.0);
}

TEST(DeviceGroupTest, MembersShareOneTraceWithPerDeviceLanes)
{
    DeviceGroup group(rtx4090(), 3);
    group.device(0).trace().enable();
    // Every member sees the shared recorder as enabled.
    EXPECT_TRUE(group.device(2).trace().enabled());

    KernelCost cost;
    cost.flops = 1e9;
    cost.bytes = 1e6;
    group.device(2).launchKernel(cost, "shard_kernel");
    group.device(0).launchKernel(cost, "shard_kernel");
    group.allGather(1e6);

    const auto& events = group.device(0).trace().events();
    bool saw_pid2 = false, saw_pid0 = false;
    int collective_spans = 0;
    for (const auto& e : events) {
        if (e.name == "shard_kernel" && e.pid == 2) saw_pid2 = true;
        if (e.name == "shard_kernel" && e.pid == 0) saw_pid0 = true;
        if (e.cat == "collective") ++collective_spans;
    }
    EXPECT_TRUE(saw_pid2);
    EXPECT_TRUE(saw_pid0);
    // One collective span per participating device lane.
    EXPECT_EQ(collective_spans, 3);

    // The export names each device pid it saw.
    std::ostringstream os;
    group.device(0).trace().writeChromeTrace(os);
    EXPECT_NE(os.str().find("device0"), std::string::npos);
    EXPECT_NE(os.str().find("device2"), std::string::npos);
}

TEST(DeviceGroupTest, IndependentWorkKeepsIndependentClocks)
{
    // No collective: member clocks advance independently (no hidden
    // synchronization between shards outside ccl sites).
    DeviceGroup group(rtx4090(), 2);
    KernelCost cost;
    cost.bytes = 1e6;
    group.device(0).launchKernel(cost);
    EXPECT_GT(group.device(0).clockUs(), 0.0);
    EXPECT_DOUBLE_EQ(group.device(1).clockUs(), 0.0);
}

} // namespace
} // namespace device
} // namespace relax
