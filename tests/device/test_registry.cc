/**
 * @file
 * The data-driven device registry: deviceByName round-trips every
 * preset (same spec the named factory returns, sane roofline
 * parameters), and unknown names fail with an error that names the
 * valid keys.
 */
#include <gtest/gtest.h>

#include <map>

#include "device/device.h"

namespace relax {
namespace device {
namespace {

TEST(DeviceRegistryTest, RoundTripsEveryPreset)
{
    const std::map<std::string, DeviceSpec (*)()> factories = {
        {"rtx4090", rtx4090},       {"radeon7900xtx", radeon7900xtx},
        {"m2ultra", appleM2Ultra},  {"iphone14pro", iphone14Pro},
        {"s23", samsungS23},        {"s24", samsungS24},
        {"orangepi5", orangePi5},   {"steamdeck", steamDeck},
        {"jetsonorin", jetsonOrin}, {"webgpu_m3max", webgpuM3Max},
    };
    std::vector<std::string> names = deviceNames();
    ASSERT_EQ(names.size(), factories.size());
    for (const std::string& key : names) {
        ASSERT_TRUE(factories.count(key)) << "unexpected registry key "
                                          << key;
        DeviceSpec by_name = deviceByName(key);
        DeviceSpec by_factory = factories.at(key)();
        EXPECT_EQ(by_name.name, by_factory.name);
        EXPECT_EQ(by_name.backend, by_factory.backend);
        EXPECT_DOUBLE_EQ(by_name.memBandwidthGBs,
                         by_factory.memBandwidthGBs);
        EXPECT_DOUBLE_EQ(by_name.fp16Tflops, by_factory.fp16Tflops);
        EXPECT_DOUBLE_EQ(by_name.fp32Tflops, by_factory.fp32Tflops);
        EXPECT_DOUBLE_EQ(by_name.kernelLaunchUs,
                         by_factory.kernelLaunchUs);
        EXPECT_EQ(by_name.vramBytes, by_factory.vramBytes);
        EXPECT_EQ(by_name.hasGemmLibrary, by_factory.hasGemmLibrary);
        EXPECT_EQ(by_name.supportsExecutionGraphs,
                  by_factory.supportsExecutionGraphs);

        // Roofline parameters must be physically sensible rows.
        EXPECT_GT(by_name.memBandwidthGBs, 0.0) << key;
        EXPECT_GT(by_name.fp16Tflops, 0.0) << key;
        EXPECT_GT(by_name.vramBytes, 0) << key;
        EXPECT_GT(by_name.genGemmEfficiency, 0.0) << key;
        EXPECT_LE(by_name.libGemmEfficiency, 1.0) << key;
        EXPECT_FALSE(by_name.backend.empty()) << key;
    }
}

TEST(DeviceRegistryTest, PresetNamesAreUnique)
{
    std::vector<std::string> names = deviceNames();
    std::map<std::string, int> marketing;
    for (const std::string& key : names) {
        ++marketing[deviceByName(key).name];
    }
    for (const auto& [name, count] : marketing) {
        EXPECT_EQ(count, 1) << "duplicate preset name " << name;
    }
}

TEST(DeviceRegistryTest, UnknownNameErrorsListTheCatalog)
{
    try {
        deviceByName("tpu_v9");
        FAIL() << "expected RuntimeError";
    } catch (const RuntimeError& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("unknown device: tpu_v9"), std::string::npos)
            << what;
        // A clear error names the valid keys.
        EXPECT_NE(what.find("rtx4090"), std::string::npos) << what;
        EXPECT_NE(what.find("webgpu_m3max"), std::string::npos) << what;
    }
}

} // namespace
} // namespace device
} // namespace relax
