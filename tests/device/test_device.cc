/**
 * @file
 * Tests for the simulated device layer: roofline cost behavior, memory
 * accounting and VRAM limits, and execution-graph capture/replay state.
 */
#include <gtest/gtest.h>

#include "device/device.h"

namespace relax {
namespace device {
namespace {

TEST(DeviceTest, CatalogCoversEveryEvaluationPlatform)
{
    for (const char* name :
         {"rtx4090", "radeon7900xtx", "m2ultra", "iphone14pro", "s23",
          "s24", "orangepi5", "steamdeck", "jetsonorin", "webgpu_m3max"}) {
        DeviceSpec spec = deviceByName(name);
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GT(spec.memBandwidthGBs, 0.0);
        EXPECT_GT(spec.fp16Tflops, 0.0);
        EXPECT_GT(spec.vramBytes, 0);
    }
    EXPECT_THROW(deviceByName("tpu_v9"), RuntimeError);
}

TEST(DeviceTest, RooflinePicksMemoryOrComputeBound)
{
    SimDevice dev(rtx4090());
    // Memory-bound: 1 GB at ~1 TB/s ≈ 1 ms.
    KernelCost memory_bound{1e3, 1e9, 1.0, false};
    double t1 = dev.launchKernel(memory_bound);
    EXPECT_NEAR(t1, 1e9 / (1008.0 * 1e3) + 3.0, 1.0);
    // Compute-bound: 1 TFLOP at 165 TFLOPS ≈ 6 ms.
    KernelCost compute_bound{1e12, 1e3, 1.0, false};
    double t2 = dev.launchKernel(compute_bound);
    EXPECT_GT(t2, 5000.0);
    EXPECT_LT(t2, 8000.0);
}

TEST(DeviceTest, EfficiencyScalesLatency)
{
    SimDevice dev(rtx4090());
    KernelCost half{0.0, 1e9, 0.5, false};
    KernelCost full{0.0, 1e9, 1.0, false};
    double slow = dev.launchKernel(half);
    double fast = dev.launchKernel(full);
    EXPECT_NEAR(slow - 3.0, 2.0 * (fast - 3.0), 1e-6);
}

TEST(DeviceTest, TracksAllocationsAndPeak)
{
    SimDevice dev(rtx4090());
    dev.alloc(100);
    dev.alloc(50);
    EXPECT_EQ(dev.allocatedBytes(), 150);
    EXPECT_EQ(dev.peakBytes(), 150);
    dev.free(100);
    EXPECT_EQ(dev.allocatedBytes(), 50);
    EXPECT_EQ(dev.peakBytes(), 150); // peak is sticky
    EXPECT_EQ(dev.totalAllocatedBytes(), 150);
}

TEST(DeviceTest, VramLimitEnforced)
{
    DeviceSpec spec = iphone14Pro();
    SimDevice dev(spec);
    EXPECT_THROW(dev.alloc(spec.vramBytes + 1), RuntimeError);
}

TEST(DeviceTest, GraphReplayAfterCapture)
{
    SimDevice dev(rtx4090());
    EXPECT_FALSE(dev.beginGraph(0, "n=8")); // first run: capture
    double capture = dev.launchKernel({0.0, 1e6, 1.0, false});
    dev.endGraph();
    EXPECT_TRUE(dev.beginGraph(0, "n=8")); // same signature: replay
    double replay = dev.launchKernel({0.0, 1e6, 1.0, false});
    dev.endGraph();
    EXPECT_LT(replay, capture);
    // New shape signature captures again.
    EXPECT_FALSE(dev.beginGraph(0, "n=16"));
    dev.endGraph();
}

TEST(DeviceTest, LibraryAvailabilityMatchesBackends)
{
    EXPECT_TRUE(rtx4090().hasGemmLibrary);
    EXPECT_TRUE(rtx4090().supportsExecutionGraphs);
    EXPECT_TRUE(radeon7900xtx().hasGemmLibrary);
    EXPECT_FALSE(radeon7900xtx().hasAttentionLibrary);
    EXPECT_FALSE(appleM2Ultra().supportsExecutionGraphs);
    EXPECT_FALSE(samsungS23().hasGemmLibrary); // no vendor BLAS on Adreno
    EXPECT_FALSE(webgpuM3Max().hasGemmLibrary);
}

} // namespace
} // namespace device
} // namespace relax
