/**
 * @file
 * Tests for operator shape-deduction rules and their TIR legalizations,
 * each validated against the reference interpreter.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "ir/op_registry.h"
#include "op/ops.h"
#include "op/tir_kernels.h"
#include "shape/block_builder.h"
#include "tir/analysis.h"
#include "tir/interpreter.h"

namespace relax {
namespace op {
namespace {

using namespace ir;
using Var = ir::Var;
using VarNode = ir::VarNode;

StructInfo
deduceCall(const Call& call)
{
    auto module = IRModule::create();
    return shape::deduceStructInfo(call, module);
}

Var
tensorVar(const std::string& name, std::vector<PrimExpr> shape,
          DataType dtype = DataType::f32())
{
    return makeVar(name, tensorSInfo(std::move(shape), dtype));
}

TEST(OpInferTest, BinaryBroadcast)
{
    SymVar n = var("n");
    Var a = tensorVar("a", {n, intImm(4)});
    Var b = tensorVar("b", {intImm(4)});
    EXPECT_EQ(ir::toString(deduceCall(add(a, b))),
              "Tensor((n, 4), \"f32\")");
    Var c = tensorVar("c", {n, intImm(1)});
    EXPECT_EQ(ir::toString(deduceCall(multiply(a, c))),
              "Tensor((n, 4), \"f32\")");
    Var bad = tensorVar("bad", {intImm(5)});
    EXPECT_THROW(deduceCall(add(a, bad)), ShapeError);
    Var wrong_dtype = tensorVar("w", {n, intImm(4)}, DataType::f16());
    EXPECT_THROW(deduceCall(add(a, wrong_dtype)), TypeError);
}

TEST(OpInferTest, MatmulSymbolicDims)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(128)});
    Var w = tensorVar("w", {intImm(128), intImm(256)});
    EXPECT_EQ(ir::toString(deduceCall(matmul(x, w))),
              "Tensor((n, 256), \"f32\")");
    // Linear-layer layout: w [m, k] with transpose_b.
    Var wt = tensorVar("wt", {intImm(256), intImm(128)});
    EXPECT_EQ(ir::toString(deduceCall(matmul(x, wt, true))),
              "Tensor((n, 256), \"f32\")");
    // Reduction-dim mismatch rejected.
    Var bad = tensorVar("bad", {intImm(64), intImm(256)});
    EXPECT_THROW(deduceCall(matmul(x, bad)), ShapeError);
    // Batched 4-D (attention scores): [b,h,n,d] x [b,h,m,d]^T.
    SymVar b = var("b");
    SymVar m = var("m");
    Var q = tensorVar("q", {b, intImm(8), n, intImm(64)});
    Var k = tensorVar("k", {b, intImm(8), m, intImm(64)});
    EXPECT_EQ(ir::toString(deduceCall(matmul(q, k, true))),
              "Tensor((b, 8, n, m), \"f32\")");
}

TEST(OpInferTest, AttentionShape)
{
    SymVar b = var("b");
    SymVar m = var("m");
    Var q = tensorVar("q", {b, intImm(8), intImm(1), intImm(64)});
    Var k = tensorVar("k", {b, intImm(8), m, intImm(64)});
    Var v = tensorVar("v", {b, intImm(8), m, intImm(64)});
    EXPECT_EQ(ir::toString(deduceCall(attention(q, k, v, 0.125, false))),
              "Tensor((b, 8, 1, 64), \"f32\")");
}

TEST(OpInferTest, RaggedAttentionShape)
{
    // Packed-varlen page-pool layout: q holds all fresh tokens flat
    // [1, h, n, d], per-row extents ride in cu_fresh [b+1], K/V are
    // persistent pools [p, h, c, d] addressed through the [b, w] block
    // table; the output takes q's shape.
    SymVar b = var("b");
    SymVar n = var("n");
    SymVar p = var("p");
    SymVar c = var("c");
    SymVar w = var("w");
    Var q = tensorVar("q", {intImm(1), intImm(8), n, intImm(64)});
    Var k = tensorVar("k", {p, intImm(8), c, intImm(64)});
    Var v = tensorVar("v", {p, intImm(8), c, intImm(64)});
    Var lens = tensorVar("lens", {b}, DataType::i64());
    Var cu = tensorVar("cu", {relax::add(b, intImm(1))}, DataType::i64());
    Var table = tensorVar("table", {b, w}, DataType::i64());
    EXPECT_EQ(ir::toString(deduceCall(
                  attentionRagged(q, k, v, lens, cu, table, 0.125))),
              "Tensor((1, 8, n, 64), \"f32\")");
    // K and V pool page sizes must agree.
    SymVar c2 = var("c2");
    Var v_bad = tensorVar("vb", {p, intImm(8), c2, intImm(64)});
    EXPECT_THROW(deduceCall(
                     attentionRagged(q, k, v_bad, lens, cu, table, 1.0)),
                 ShapeError);
}

TEST(OpInferTest, ReductionsAndNorms)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(8)});
    EXPECT_EQ(ir::toString(deduceCall(sum(x, -1))), "Tensor((n), \"f32\")");
    EXPECT_EQ(ir::toString(deduceCall(sum(x, -1, true))),
              "Tensor((n, 1), \"f32\")");
    EXPECT_EQ(ir::toString(deduceCall(mean(x, 0))), "Tensor((8), \"f32\")");
    Var w = tensorVar("w", {intImm(8)});
    EXPECT_EQ(ir::toString(deduceCall(rmsNorm(x, w))),
              "Tensor((n, 8), \"f32\")");
    EXPECT_EQ(ir::toString(deduceCall(softmax(x))),
              "Tensor((n, 8), \"f32\")");
}

TEST(OpInferTest, ShapeManipulation)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(2), intImm(4)});
    EXPECT_EQ(ir::toString(deduceCall(permuteDims(x, {2, 0, 1}))),
              "Tensor((4, n, 2), \"f32\")");
    EXPECT_EQ(ir::toString(deduceCall(flatten(x))),
              "Tensor((8 * n), \"f32\")");
    Var table = tensorVar("t", {intImm(100), intImm(16)});
    Var ids = makeVar("ids", tensorSInfo({n}, DataType::i64()));
    EXPECT_EQ(ir::toString(deduceCall(take(table, ids))),
              "Tensor((n, 16), \"f32\")");
    // concat along dynamic axis: (n, 4) ++ (m, 4) -> (n + m, 4).
    SymVar m = var("m");
    Var y = tensorVar("y", {m, intImm(4)});
    Var x2 = tensorVar("x2", {n, intImm(4)});
    EXPECT_EQ(ir::toString(deduceCall(concat({x2, y}, 0))),
              "Tensor((m + n, 4), \"f32\")");
    EXPECT_THROW(deduceCall(concat({x2, tensorVar("z", {m, intImm(5)})}, 0)),
                 ShapeError);
}

// ---------------------------------------------------------------------------
// Legalization correctness against the interpreter
// ---------------------------------------------------------------------------

/** Runs a legalized single-op kernel on concrete inputs. */
NDArray
runLegalized(const Call& call, const std::vector<NDArray>& inputs,
             std::vector<int64_t> out_shape)
{
    ensureOpsRegistered();
    auto module = IRModule::create();
    StructInfo out_sinfo = shape::deduceStructInfo(call, module);
    call->setStructInfo(out_sinfo);
    const auto* op_node = static_cast<const OpNode*>(call->op.get());
    const ir::OpInfo* info = ir::OpRegistry::global().find(op_node->name);
    RELAX_ICHECK(info && info->legalize) << "no legalization";
    tir::PrimFunc func = info->legalize(*call, "kernel");
    NDArray out = NDArray::zeros(std::move(out_shape),
                                 ir::asTensor(out_sinfo)
                                     ? ir::asTensor(out_sinfo)->dtype
                                     : DataType::f32());
    std::vector<NDArray> args = inputs;
    args.push_back(out);
    tir::run(func, args);
    return out;
}

TEST(OpLegalizeTest, AddWithBroadcast)
{
    SymVar n = var("n");
    Var a = tensorVar("a", {n, intImm(2)});
    Var b = tensorVar("b", {intImm(2)});
    NDArray av = NDArray::fromVector({3, 2}, DataType::f32(),
                                     {1, 2, 3, 4, 5, 6});
    NDArray bv = NDArray::fromVector({2}, DataType::f32(), {10, 20});
    NDArray out = runLegalized(add(a, b), {av, bv}, {3, 2});
    EXPECT_EQ(out.data(),
              (std::vector<double>{11, 22, 13, 24, 15, 26}));
}

TEST(OpLegalizeTest, MatmulTransposeB)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(2)});
    Var w = tensorVar("w", {intImm(3), intImm(2)});
    NDArray xv = NDArray::fromVector({1, 2}, DataType::f32(), {1, 2});
    NDArray wv = NDArray::fromVector({3, 2}, DataType::f32(),
                                     {1, 0, 0, 1, 1, 1});
    NDArray out = runLegalized(matmul(x, w, true), {xv, wv}, {1, 3});
    EXPECT_EQ(out.data(), (std::vector<double>{1, 2, 3}));
}

TEST(OpLegalizeTest, SoftmaxRowsSumToOne)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(4)});
    NDArray xv = NDArray::fromVector({2, 4}, DataType::f32(),
                                     {0, 1, 2, 3, -1, -1, -1, -1});
    NDArray out = runLegalized(softmax(x), {xv}, {2, 4});
    double row0 = out.at(0) + out.at(1) + out.at(2) + out.at(3);
    double row1 = out.at(4) + out.at(5) + out.at(6) + out.at(7);
    EXPECT_NEAR(row0, 1.0, 1e-9);
    EXPECT_NEAR(row1, 1.0, 1e-9);
    EXPECT_NEAR(out.at(4), 0.25, 1e-9);
    EXPECT_GT(out.at(3), out.at(0));
}

TEST(OpLegalizeTest, RMSNormMatchesReference)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(2)});
    Var w = tensorVar("w", {intImm(2)});
    NDArray xv = NDArray::fromVector({1, 2}, DataType::f32(), {3, 4});
    NDArray wv = NDArray::fromVector({2}, DataType::f32(), {1, 2});
    NDArray out = runLegalized(rmsNorm(x, w, 0.0), {xv, wv}, {1, 2});
    double rms = std::sqrt((9.0 + 16.0) / 2.0);
    EXPECT_NEAR(out.at(0), 3.0 / rms, 1e-9);
    EXPECT_NEAR(out.at(1), 2.0 * 4.0 / rms, 1e-9);
}

TEST(OpLegalizeTest, LayerNormMatchesReference)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(2)});
    Var g = tensorVar("g", {intImm(2)});
    Var b = tensorVar("b", {intImm(2)});
    NDArray xv = NDArray::fromVector({1, 2}, DataType::f32(), {1, 3});
    NDArray gv = NDArray::fromVector({2}, DataType::f32(), {1, 1});
    NDArray bv = NDArray::fromVector({2}, DataType::f32(), {0, 10});
    NDArray out = runLegalized(layerNorm(x, g, b, 0.0), {xv, gv, bv},
                               {1, 2});
    // mean 2, var 1 -> normalized {-1, 1}.
    EXPECT_NEAR(out.at(0), -1.0, 1e-9);
    EXPECT_NEAR(out.at(1), 11.0, 1e-9);
}

TEST(OpLegalizeTest, ReshapeAndTranspose)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n, intImm(2), intImm(2)});
    NDArray xv = NDArray::fromVector({1, 2, 2}, DataType::f32(),
                                     {1, 2, 3, 4});
    NDArray reshaped = runLegalized(
        op::reshape(x, makeShapeExpr({n, intImm(4)})), {xv}, {1, 4});
    EXPECT_EQ(reshaped.data(), (std::vector<double>{1, 2, 3, 4}));

    Var y = tensorVar("y", {intImm(2), intImm(3)});
    NDArray yv = NDArray::fromVector({2, 3}, DataType::f32(),
                                     {1, 2, 3, 4, 5, 6});
    NDArray transposed =
        runLegalized(permuteDims(y, {1, 0}), {yv}, {3, 2});
    EXPECT_EQ(transposed.data(), (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

TEST(OpLegalizeTest, TakeGathersRows)
{
    Var table = tensorVar("t", {intImm(3), intImm(2)});
    SymVar n = var("n");
    Var ids = makeVar("ids", tensorSInfo({n}, DataType::i64()));
    NDArray tv = NDArray::fromVector({3, 2}, DataType::f32(),
                                     {0, 0, 10, 11, 20, 21});
    NDArray iv = NDArray::fromVector({2}, DataType::i64(), {2, 1});
    NDArray out = runLegalized(take(table, ids), {tv, iv}, {2, 2});
    EXPECT_EQ(out.data(), (std::vector<double>{20, 21, 10, 11}));
}

TEST(OpLegalizeTest, ConcatAndSplitRoundTrip)
{
    SymVar n = var("n");
    Var a = tensorVar("a", {n, intImm(2)});
    Var b = tensorVar("b", {n, intImm(2)});
    NDArray av = NDArray::fromVector({1, 2}, DataType::f32(), {1, 2});
    NDArray bv = NDArray::fromVector({1, 2}, DataType::f32(), {3, 4});
    NDArray cat = runLegalized(concat({a, b}, 0), {av, bv}, {2, 2});
    EXPECT_EQ(cat.data(), (std::vector<double>{1, 2, 3, 4}));

    // Split is multi-output DPS: run its kernel directly.
    ensureOpsRegistered();
    Var x = tensorVar("x", {mul(n, intImm(2)), intImm(2)});
    Call split_call = split(x, 2, 0);
    auto module = IRModule::create();
    split_call->setStructInfo(
        shape::deduceStructInfo(split_call, module));
    const ir::OpInfo* info = ir::OpRegistry::global().find("relax.split");
    tir::PrimFunc func = info->legalize(*split_call, "split_kernel");
    EXPECT_EQ(func->numOutputs, 2);
    NDArray o0 = NDArray::zeros({1, 2}, DataType::f32());
    NDArray o1 = NDArray::zeros({1, 2}, DataType::f32());
    tir::run(func, {cat, o0, o1});
    EXPECT_EQ(o0.data(), (std::vector<double>{1, 2}));
    EXPECT_EQ(o1.data(), (std::vector<double>{3, 4}));
}

TEST(OpLegalizeTest, AttentionMatchesNaiveReference)
{
    // 1 batch, 1 head, n=2 queries, m=2 keys, d=1.
    Var q = tensorVar("q", {intImm(1), intImm(1), intImm(2), intImm(1)});
    Var k = tensorVar("k", {intImm(1), intImm(1), intImm(2), intImm(1)});
    Var v = tensorVar("v", {intImm(1), intImm(1), intImm(2), intImm(1)});
    NDArray qv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(), {1, 2});
    NDArray kv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(), {1, 0});
    NDArray vv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(),
                                     {10, 20});
    NDArray out = runLegalized(attention(q, k, v, 1.0, false),
                               {qv, kv, vv}, {1, 1, 2, 1});
    // Row 0: scores {1, 0} -> softmax {e/(e+1), 1/(e+1)}.
    double e = std::exp(1.0);
    EXPECT_NEAR(out.at(0), (e * 10 + 20) / (e + 1), 1e-6);
    // Row 1: scores {2, 0}.
    double e2 = std::exp(2.0);
    EXPECT_NEAR(out.at(1), (e2 * 10 + 20) / (e2 + 1), 1e-6);
}

TEST(OpLegalizeTest, CausalAttentionMasksFuture)
{
    Var q = tensorVar("q", {intImm(1), intImm(1), intImm(2), intImm(1)});
    Var k = tensorVar("k", {intImm(1), intImm(1), intImm(2), intImm(1)});
    Var v = tensorVar("v", {intImm(1), intImm(1), intImm(2), intImm(1)});
    NDArray qv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(), {1, 1});
    NDArray kv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(), {1, 1});
    NDArray vv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(),
                                     {10, 20});
    NDArray out = runLegalized(attention(q, k, v, 1.0, true),
                               {qv, kv, vv}, {1, 1, 2, 1});
    // Query 0 sees only key 0 -> exactly 10.
    EXPECT_NEAR(out.at(0), 10.0, 1e-6);
    // Query 1 sees both (equal scores) -> 15.
    EXPECT_NEAR(out.at(1), 15.0, 1e-6);
}

TEST(OpLegalizeTest, RaggedAttentionMatchesPerSequenceDense)
{
    // Two sequences packed into one [1, 1, 2, 1] varlen call (one fresh
    // token each, cu = {0, 1, 2}), gathering from one shared page pool
    // [3, 1, 2, 1] (3 physical pages of 2 positions): row 0 holds 2 live
    // positions (lens=1 plus the appended token) on page 0, row 1 holds
    // 4 on pages 1 and 2. Each row must equal a dense attention call
    // over just its live prefix — unmapped table entries and foreign
    // pages must not leak in.
    Var q = tensorVar("q", {intImm(1), intImm(1), intImm(2), intImm(1)});
    Var k = tensorVar("k", {intImm(3), intImm(1), intImm(2), intImm(1)});
    Var v = tensorVar("v", {intImm(3), intImm(1), intImm(2), intImm(1)});
    Var lens = tensorVar("lens", {intImm(2)}, DataType::i64());
    Var cu = tensorVar("cu", {intImm(3)}, DataType::i64());
    Var table = tensorVar("table", {intImm(2), intImm(2)},
                          DataType::i64());

    NDArray qv = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(),
                                     {1.0, 0.5});
    // K pool pages: page 0 = row 0's {1, 0}; pages 1, 2 = row 1's
    // {2, 1, 0, 1}. Row 0's positions 2, 3 route through table entry -1,
    // whose clamped gather lands on page 0 — the mask must discard it.
    NDArray kv = NDArray::fromVector({3, 1, 2, 1}, DataType::f32(),
                                     {1, 0, 2, 1, 0, 1});
    NDArray vv = NDArray::fromVector({3, 1, 2, 1}, DataType::f32(),
                                     {10, 20, 1, 2, 3, 4});
    NDArray lens_v = NDArray::fromVector({2}, DataType::i64(), {1, 3});
    NDArray cu_v = NDArray::fromVector({3}, DataType::i64(), {0, 1, 2});
    // Block table: row 0 owns page 0 only; row 1 owns pages 1 and 2.
    NDArray table_v = NDArray::fromVector({2, 2}, DataType::i64(),
                                          {0, -1, 1, 2});
    NDArray out = runLegalized(
        attentionRagged(q, k, v, lens, cu, table, 1.0),
        {qv, kv, vv, lens_v, cu_v, table_v}, {1, 1, 2, 1});

    // Dense per-sequence references over the live prefixes.
    auto dense_row = [&](std::vector<double> qd, std::vector<double> kd,
                         std::vector<double> vd) {
        int64_t len = (int64_t)kd.size();
        Var q1 = tensorVar("q1", {intImm(1), intImm(1), intImm(1),
                                  intImm(1)});
        Var k1 = tensorVar("k1", {intImm(1), intImm(1), intImm(len),
                                  intImm(1)});
        Var v1 = tensorVar("v1", {intImm(1), intImm(1), intImm(len),
                                  intImm(1)});
        return runLegalized(
                   attention(q1, k1, v1, 1.0, /*causal=*/false),
                   {NDArray::fromVector({1, 1, 1, 1}, DataType::f32(),
                                        std::move(qd)),
                    NDArray::fromVector({1, 1, len, 1}, DataType::f32(),
                                        std::move(kd)),
                    NDArray::fromVector({1, 1, len, 1}, DataType::f32(),
                                        std::move(vd))},
                   {1, 1, 1, 1})
            .at(0);
    };
    EXPECT_NEAR(out.at(0), dense_row({1.0}, {1, 0}, {10, 20}), 1e-9);
    EXPECT_NEAR(out.at(1),
                dense_row({0.5}, {2, 1, 0, 1}, {1, 2, 3, 4}), 1e-9);
}

TEST(OpKernelTest, RaggedKvAppendScattersIntoPoolPages)
{
    // Page pool [3, 1, 2, 1] (3 pages of 2 positions). Row 0 (lens=2,
    // pages 0 and 2) appends at global position 2 -> page 2 offset 0;
    // row 1 (lens=1, page 1) appends at position 1 -> page 1 offset 1.
    // Nothing else in the pool may change — the append is a pure
    // scatter, not a copy.
    NDArray pool = NDArray::fromVector({3, 1, 2, 1}, DataType::f32(),
                                       {1, 2, 5, 6, 0, 0});
    NDArray fresh = NDArray::fromVector({1, 1, 2, 1}, DataType::f32(),
                                        {9, 8});
    NDArray lens = NDArray::fromVector({2}, DataType::i64(), {2, 1});
    NDArray cu = NDArray::fromVector({3}, DataType::i64(), {0, 1, 2});
    NDArray table = NDArray::fromVector({2, 2}, DataType::i64(),
                                        {0, 2, 1, -1});
    tir::PrimFunc func = makeKvAppendRaggedFunc(
        "append_pool",
        {intImm(1), intImm(1), intImm(2), intImm(1)}, {intImm(2)},
        {intImm(3)}, {intImm(2), intImm(2)},
        {intImm(3), intImm(1), intImm(2), intImm(1)}, DataType::f32());
    std::vector<NDArray> args{fresh, lens, cu, table, pool};
    tir::run(func, args);
    // Row 0's 9 lands at pool page 2, offset 0; row 1's 8 lands at pool
    // page 1, offset 1. Pages copy nothing.
    EXPECT_EQ(pool.data(), (std::vector<double>{1, 2, 5, 8, 9, 0}));
}

TEST(OpKernelTest, RaggedKvAppendMultiTokenPrefillChunk)
{
    // n > 1 is the pool-writing prefill path: a 3-token chunk starting
    // at offset 1 spans a page boundary (pages of 2 positions).
    NDArray pool = NDArray::zeros({2, 1, 2, 1}, DataType::f32());
    NDArray fresh = NDArray::fromVector({1, 1, 3, 1}, DataType::f32(),
                                        {7, 8, 9});
    NDArray lens = NDArray::fromVector({1}, DataType::i64(), {1});
    NDArray cu = NDArray::fromVector({2}, DataType::i64(), {0, 3});
    NDArray table = NDArray::fromVector({1, 2}, DataType::i64(), {1, 0});
    tir::PrimFunc func = makeKvAppendRaggedFunc(
        "append_chunk",
        {intImm(1), intImm(1), intImm(3), intImm(1)}, {intImm(1)},
        {intImm(2)}, {intImm(1), intImm(2)},
        {intImm(2), intImm(1), intImm(2), intImm(1)}, DataType::f32());
    std::vector<NDArray> args{fresh, lens, cu, table, pool};
    tir::run(func, args);
    // Positions 1, 2, 3 -> page 1 offset 1, then page 0 offsets 0, 1.
    EXPECT_EQ(pool.data(), (std::vector<double>{8, 9, 0, 7}));
}

TEST(OpKernelTest, PackedVarlenMatchesPerRowCalls)
{
    // The packed-varlen contract: one append+attention call over b rows
    // of uneven fresh lengths must be BIT-identical to b separate
    // single-row calls — a decode (fresh=1), a page-straddling prefill
    // chunk (fresh=3 starting at offset 1), and a full prompt (fresh=4
    // from an empty row) all packed together. Table width (and with it
    // the kernel's m extent) is held equal across scenarios so the
    // floating-point operation order matches exactly.
    const int64_t kPage = 2, kPages = 6, kWidth = 4, kTotal = 8;
    const std::vector<double> lens_all{2, 1, 0};
    const std::vector<double> cu_all{0, 1, 4, 8};
    const std::vector<double> table_all{0, 1, -1, -1, 2, 3, -1, -1,
                                        4, 5, -1, -1};
    const std::vector<double> kpool_init{1, -1, 0, 0, 2, 0,
                                         0, 0,  0, 0, 0, 0};
    const std::vector<double> vpool_init{10, 20, 0, 0, 30, 0,
                                         0,  0,  0, 0, 0,  0};
    const std::vector<double> fresh_k{0.5, 1.5, -0.5, 1.0,
                                      2.0, 1.0, -1.0, 0.5};
    const std::vector<double> fresh_v{40, 50, 60, 70, 80, 90, 100, 110};
    const std::vector<double> q_all{1.0, 0.5,  -0.5, 1.5,
                                    0.25, -1.0, 2.0,  0.75};

    auto pool_shape = [&] {
        return std::vector<PrimExpr>{intImm(kPages), intImm(1),
                                     intImm(kPage), intImm(1)};
    };
    auto run_scenario = [&](const std::vector<std::vector<double>>& rows_q,
                            const std::vector<std::vector<double>>& rows_k,
                            const std::vector<std::vector<double>>& rows_v,
                            const std::vector<std::vector<double>>& lens_r,
                            const std::vector<std::vector<double>>& cu_r,
                            const std::vector<std::vector<double>>& tab_r,
                            NDArray kpool, NDArray vpool) {
        // All appends land before any attention, as one engine step
        // would do; rows write disjoint pages so order is immaterial.
        std::vector<NDArray> lens_t, cu_t, tab_t;
        for (size_t r = 0; r < rows_q.size(); ++r) {
            int64_t b = (int64_t)lens_r[r].size();
            int64_t n = (int64_t)rows_q[r].size();
            lens_t.push_back(NDArray::fromVector(
                {b}, DataType::i64(), std::vector<double>(lens_r[r])));
            cu_t.push_back(NDArray::fromVector(
                {b + 1}, DataType::i64(), std::vector<double>(cu_r[r])));
            tab_t.push_back(
                NDArray::fromVector({b, kWidth}, DataType::i64(),
                                    std::vector<double>(tab_r[r])));
            for (int which = 0; which < 2; ++which) {
                tir::PrimFunc append = makeKvAppendRaggedFunc(
                    "append",
                    {intImm(1), intImm(1), intImm(n), intImm(1)},
                    {intImm(b)}, {intImm(b + 1)},
                    {intImm(b), intImm(kWidth)}, pool_shape(),
                    DataType::f32());
                NDArray fresh = NDArray::fromVector(
                    {1, 1, n, 1}, DataType::f32(),
                    std::vector<double>(which == 0 ? rows_k[r]
                                                   : rows_v[r]));
                std::vector<NDArray> args{fresh, lens_t[r], cu_t[r],
                                          tab_t[r],
                                          which == 0 ? kpool : vpool};
                tir::run(append, args);
            }
        }
        std::vector<double> out;
        for (size_t r = 0; r < rows_q.size(); ++r) {
            int64_t b = (int64_t)lens_r[r].size();
            int64_t n = (int64_t)rows_q[r].size();
            tir::PrimFunc attn = makeRaggedAttentionFunc(
                "attn", {intImm(1), intImm(1), intImm(n), intImm(1)},
                pool_shape(), pool_shape(), {intImm(b)},
                {intImm(b + 1)}, {intImm(b), intImm(kWidth)}, 1.0,
                DataType::f32());
            NDArray qv = NDArray::fromVector(
                {1, 1, n, 1}, DataType::f32(),
                std::vector<double>(rows_q[r]));
            NDArray y = NDArray::zeros({1, 1, n, 1}, DataType::f32());
            std::vector<NDArray> args{qv,       kpool,   vpool, lens_t[r],
                                      cu_t[r], tab_t[r], y};
            tir::run(attn, args);
            out.insert(out.end(), y.data().begin(), y.data().end());
        }
        return out;
    };

    // Scenario A: everything in one packed call.
    NDArray kpool_a = NDArray::fromVector(std::vector<int64_t>{kPages, 1, kPage, 1},
                                          DataType::f32(),
                                          std::vector<double>(kpool_init));
    NDArray vpool_a = NDArray::fromVector(std::vector<int64_t>{kPages, 1, kPage, 1},
                                          DataType::f32(),
                                          std::vector<double>(vpool_init));
    std::vector<double> packed = run_scenario(
        {q_all}, {fresh_k}, {fresh_v}, {lens_all}, {cu_all}, {table_all},
        kpool_a, vpool_a);

    // Scenario B: three separate single-row calls over clone pools.
    NDArray kpool_b = NDArray::fromVector(std::vector<int64_t>{kPages, 1, kPage, 1},
                                          DataType::f32(),
                                          std::vector<double>(kpool_init));
    NDArray vpool_b = NDArray::fromVector(std::vector<int64_t>{kPages, 1, kPage, 1},
                                          DataType::f32(),
                                          std::vector<double>(vpool_init));
    auto slice = [](const std::vector<double>& v, int64_t lo, int64_t hi) {
        return std::vector<double>(v.begin() + lo, v.begin() + hi);
    };
    std::vector<double> per_row = run_scenario(
        {slice(q_all, 0, 1), slice(q_all, 1, 4), slice(q_all, 4, 8)},
        {slice(fresh_k, 0, 1), slice(fresh_k, 1, 4),
         slice(fresh_k, 4, 8)},
        {slice(fresh_v, 0, 1), slice(fresh_v, 1, 4),
         slice(fresh_v, 4, 8)},
        {{2}, {1}, {0}}, {{0, 1}, {0, 3}, {0, 4}},
        {slice(table_all, 0, 4), slice(table_all, 4, 8),
         slice(table_all, 8, 12)},
        kpool_b, vpool_b);

    // Bit-identical outputs at every packed position, and bit-identical
    // final pool contents.
    ASSERT_EQ((int64_t)packed.size(), kTotal);
    ASSERT_EQ(per_row.size(), packed.size());
    for (size_t i = 0; i < packed.size(); ++i) {
        EXPECT_DOUBLE_EQ(packed[i], per_row[i]) << "packed position " << i;
    }
    EXPECT_EQ(kpool_a.data(), kpool_b.data());
    EXPECT_EQ(vpool_a.data(), vpool_b.data());
}

TEST(OpKernelTest, DecodeQ4UnpacksNibbles)
{
    // Pack the nibble pattern 0..7 into one u32 word per row.
    tir::PrimFunc decode = makeDecodeQ4Func("decode_q4", intImm(1),
                                            intImm(8), DataType::f32());
    EXPECT_EQ(tir::analyzePatternKind(decode),
              tir::PatternKind::kInjective);
    uint64_t packed = 0;
    for (uint64_t j = 0; j < 8; ++j) packed |= (j & 0xF) << (4 * j);
    NDArray data = NDArray::fromVector({1, 1}, DataType::u32(),
                                       {(double)packed});
    NDArray scale = NDArray::fromVector({1, 1}, DataType::f32(), {2.0});
    NDArray out = NDArray::zeros({1, 8}, DataType::f32());
    tir::run(decode, {data, scale, out});
    for (int64_t j = 0; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(out.at(j), 2.0 * ((double)j - 7.0)) << j;
    }
}

TEST(OpKernelTest, SplitKMatmulHasGlobalWorkspace)
{
    tir::PrimFunc func = makeSplitKMatmulFunc(
        "mm_split_k", {intImm(2), intImm(4)}, {intImm(4), intImm(2)}, 2,
        DataType::f32());
    auto workspace = tir::findGlobalWorkspace(func);
    ASSERT_TRUE(workspace.has_value());

    // Correctness: identity-ish small product.
    NDArray a = NDArray::fromVector({2, 4}, DataType::f32(),
                                    {1, 2, 3, 4, 5, 6, 7, 8});
    NDArray b = NDArray::fromVector({4, 2}, DataType::f32(),
                                    {1, 0, 0, 1, 1, 0, 0, 1});
    NDArray y = NDArray::zeros({2, 2}, DataType::f32());
    tir::run(func, {a, b, y});
    EXPECT_EQ(y.data(), (std::vector<double>{4, 6, 12, 14}));
}

TEST(OpKernelTest, GeluAndSiluValues)
{
    SymVar n = var("n");
    Var x = tensorVar("x", {n});
    NDArray xv = NDArray::fromVector({2}, DataType::f32(), {0.0, 1.0});
    NDArray g = runLegalized(gelu(x), {xv}, {2});
    EXPECT_NEAR(g.at(0), 0.0, 1e-9);
    EXPECT_NEAR(g.at(1), 0.5 * (1.0 + std::erf(1.0 / std::sqrt(2.0))),
                1e-6);
    NDArray s = runLegalized(silu(x), {xv}, {2});
    EXPECT_NEAR(s.at(1), 1.0 / (1.0 + std::exp(-1.0)), 1e-9);
}

} // namespace
} // namespace op
} // namespace relax
