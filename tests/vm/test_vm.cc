/**
 * @file
 * VM tests: codegen of lowered modules, execution in data and timing
 * modes, runtime shape checks, static storage caching, graph
 * capture/replay, and library dispatch equivalence.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "frontend/compile.h"
#include "op/ops.h"
#include "shape/block_builder.h"
#include "vm/vm.h"

namespace relax {
namespace vm {
namespace {

using namespace ir;
using Var = ir::Var;

/** x:(n,4) -> exp -> relu -> add(x) on a chosen device/options. */
ir::IRModulePtr
buildChain()
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var lv1 = builder.emit(op::relu(lv0));
    Var out = builder.emitOutput(op::add(lv1, x));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));
    return module;
}

std::shared_ptr<device::SimDevice>
hostDevice()
{
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(64) << 30;
    return std::make_shared<device::SimDevice>(spec);
}

TEST(VMTest, ExecutesChainWithRealData)
{
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    VirtualMachine machine(exec, hostDevice(), /*data_mode=*/true);

    NDArray x = NDArray::fromVector({2, 4}, DataType::f32(),
                                    {0, 1, -1, 2, 0, 0, 0, 0});
    Value result = machine.invoke("main", {x});
    const NDArray& out = std::get<NDArray>(result);
    // add(relu(exp(x)), x): exp always positive so relu is identity.
    EXPECT_NEAR(out.at(0), 1.0 + 0.0, 1e-6);
    EXPECT_NEAR(out.at(1), std::exp(1.0) + 1.0, 1e-6);
    EXPECT_NEAR(out.at(2), std::exp(-1.0) - 1.0, 1e-6);
}

TEST(VMTest, ServesMultipleDynamicShapesFromOneExecutable)
{
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    VirtualMachine machine(exec, hostDevice(), true);
    for (int64_t rows : {1, 3, 8}) {
        NDArray x = NDArray::zeros({rows, 4}, DataType::f32());
        Value result = machine.invoke("main", {x});
        EXPECT_EQ(std::get<NDArray>(result).shape()[0], rows);
    }
}

TEST(VMTest, RuntimeShapeCheckRejectsBadInput)
{
    // Function annotated (n, 4): passing (2, 5) must fail the MatchShape
    // check inserted from the signature (§4.1 lightweight runtime checks).
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    VirtualMachine machine(exec, hostDevice(), true);
    NDArray bad = NDArray::zeros({2, 5}, DataType::f32());
    EXPECT_THROW(machine.invoke("main", {bad}), ShapeError);
}

TEST(VMTest, TimingModeTracksClockWithoutData)
{
    frontend::CompileOptions options;
    options.device = device::rtx4090();
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    auto dev = std::make_shared<device::SimDevice>(device::rtx4090());
    VirtualMachine machine(exec, dev, /*data_mode=*/false);
    NDArray x = NDArray::metaOnly({1024, 4}, DataType::f32());
    machine.invoke("main", {x});
    EXPECT_GT(machine.lastRunStats().latencyUs, 0.0);
    EXPECT_GT(machine.lastRunStats().kernelLaunches, 0);
}

TEST(VMTest, StaticPlanAllocatesOnceAcrossCalls)
{
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    options.bounds = {{"n", 64}};
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    auto dev = hostDevice();
    VirtualMachine machine(exec, dev, true);
    NDArray x = NDArray::zeros({8, 4}, DataType::f32());
    machine.invoke("main", {x});
    int64_t first_call = machine.lastRunStats().bytesAllocated;
    EXPECT_GT(first_call, 0);
    machine.invoke("main", {x});
    // Pre-allocated static storages are reused: no new device memory.
    EXPECT_EQ(machine.lastRunStats().bytesAllocated, 0);
    // Different shape, same executable, still no new memory (upper bound).
    NDArray y = NDArray::zeros({64, 4}, DataType::f32());
    machine.invoke("main", {y});
    EXPECT_EQ(machine.lastRunStats().bytesAllocated, 0);
}

TEST(VMTest, RuntimePoolRecyclesExactSizes)
{
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    options.enableMemoryPlanning = false; // runtime allocator path
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    auto dev = hostDevice();
    VirtualMachine machine(exec, dev, true);
    NDArray x = NDArray::zeros({8, 4}, DataType::f32());
    machine.invoke("main", {x});
    EXPECT_GT(machine.lastRunStats().bytesAllocated, 0);
    machine.invoke("main", {x});
    EXPECT_EQ(machine.lastRunStats().bytesAllocated, 0); // pool hit
    // A new shape misses the exact-size pool: fresh allocations.
    NDArray y = NDArray::zeros({16, 4}, DataType::f32());
    machine.invoke("main", {y});
    EXPECT_GT(machine.lastRunStats().bytesAllocated, 0);
}

TEST(VMTest, GraphReplayReducesLaunchOverhead)
{
    frontend::CompileOptions options;
    options.device = device::rtx4090();
    options.bounds = {{"n", 64}};
    // Keep the three elementwise kernels separate so a multi-kernel graph
    // region exists to capture.
    options.enableFusion = false;
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    auto dev = std::make_shared<device::SimDevice>(device::rtx4090());
    VirtualMachine machine(exec, dev, /*data_mode=*/false);
    NDArray x = NDArray::metaOnly({8, 4}, DataType::f32());
    machine.invoke("main", {x}); // capture
    double first = machine.lastRunStats().latencyUs;
    machine.invoke("main", {x}); // replay
    double second = machine.lastRunStats().latencyUs;
    EXPECT_LT(second, first);
}

TEST(VMTest, LibraryDispatchMatchesGeneratedKernels)
{
    // matmul through cublas-sim == matmul through generated kernel.
    auto build = [] {
        auto module = IRModule::create();
        shape::BlockBuilder builder(module);
        SymVar n = var("n");
        Var x = makeVar("x", tensorSInfo({n, intImm(8)}, DataType::f32()));
        Var w = makeVar("w", tensorSInfo({intImm(8), intImm(4)},
                                         DataType::f32()));
        builder.beginDataflowBlock();
        Var out = builder.emitOutput(op::matmul(x, w));
        builder.endBlock();
        module->addFunction("main",
                            makeFunction({x, w}, builder.finish(out),
                                         out->structInfo()));
        return module;
    };
    NDArray x = NDArray::zeros({3, 8}, DataType::f32());
    NDArray w = NDArray::zeros({8, 4}, DataType::f32());
    for (int64_t i = 0; i < x.numel(); ++i) x.set(i, 0.1 * (double)(i % 7));
    for (int64_t i = 0; i < w.numel(); ++i) w.set(i, 0.2 * (double)(i % 5));

    frontend::CompileOptions gen_options;
    gen_options.device = hostDevice()->spec(); // no libraries
    VirtualMachine gen_machine(frontend::compile(build(), gen_options),
                               hostDevice(), true);
    NDArray gen_out = std::get<NDArray>(gen_machine.invoke("main", {x, w}));

    frontend::CompileOptions lib_options;
    lib_options.device = device::rtx4090(); // cublas path
    auto dev = std::make_shared<device::SimDevice>(device::rtx4090());
    VirtualMachine lib_machine(frontend::compile(build(), lib_options), dev,
                               true);
    NDArray lib_out = std::get<NDArray>(lib_machine.invoke("main", {x, w}));
    EXPECT_EQ(gen_out.data(), lib_out.data());
}

TEST(VMTest, RaggedAttentionLibraryPricesPerSequence)
{
    // The paged-pool FlashAttention sim is data-dependent: its cost sums
    // per-row fresh-token counts (from cu_fresh) times true per-sequence
    // lengths (the [b] host tensor carries data even in timing mode),
    // never the pool size — the reason one packed varlen call beats
    // per-group calls and a huge resident pool costs nothing per step.
    // Without host data it degrades to the worst case of the mapped
    // table width.
    ensureLibrariesRegistered();
    const LibraryKernel* kernel =
        LibraryRegistry::global().find("flashattn.attention_ragged");
    ASSERT_NE(kernel, nullptr);
    device::DeviceSpec spec;
    spec.name = "host";
    spec.backend = "cpu";

    // Pool of 40 pages of 16 positions; each row maps w = 4 pages, so
    // keys range over m = 64 positions regardless of the pool size.
    const int64_t h = 2, d = 8, pages = 40, c = 16, w = 4;
    auto cost_with = [&](std::vector<double> lens, std::vector<double> cu,
                         int64_t n) {
        int64_t b = (int64_t)std::max<size_t>(lens.size(), 1);
        int64_t cu_n = (int64_t)cu.size();
        std::vector<NDArray> args{
            NDArray::metaOnly({1, h, n, d}, DataType::f16()),
            NDArray::metaOnly({pages, h, c, d}, DataType::f16()),
            NDArray::metaOnly({pages, h, c, d}, DataType::f16()),
            lens.empty()
                ? NDArray::metaOnly({4}, DataType::i64())
                : NDArray::fromVector({b}, DataType::i64(),
                                      std::move(lens)),
            cu.empty() ? NDArray::metaOnly({5}, DataType::i64())
                       : NDArray::fromVector({cu_n}, DataType::i64(),
                                             std::move(cu)),
            NDArray::metaOnly({b, w}, DataType::i64()),
            NDArray::metaOnly({1, h, n, d}, DataType::f16())};
        return kernel->cost(args, {}, spec);
    };

    // Pure decode: four rows of one fresh token each.
    device::KernelCost shorter =
        cost_with({3, 5, 7, 9}, {0, 1, 2, 3, 4}, 4);
    device::KernelCost longer =
        cost_with({30, 50, 60, 63}, {0, 1, 2, 3, 4}, 4);
    device::KernelCost padded = cost_with({}, {}, 4); // no data
    EXPECT_LT(shorter.flops, longer.flops);
    EXPECT_LT(shorter.bytes, longer.bytes);
    EXPECT_LT(longer.flops, padded.flops);
    // The no-data fallback prices every row at the full cache length.
    device::KernelCost full =
        cost_with({63, 63, 63, 63}, {0, 1, 2, 3, 4}, 4);
    EXPECT_DOUBLE_EQ(full.flops, padded.flops);

    // Packed mixed prefill+decode pricing equals the sum of per-row
    // costs: rows of fresh {4, 1, 3, 1} against lens {0, 10, 2, 5}.
    std::vector<double> mix_lens{0, 10, 2, 5};
    std::vector<double> mix_cu{0, 4, 5, 8, 9};
    device::KernelCost packed = cost_with(mix_lens, mix_cu, 9);
    double sum_flops = 0.0, sum_bytes = 0.0;
    for (size_t r = 0; r < mix_lens.size(); ++r) {
        double fresh = mix_cu[r + 1] - mix_cu[r];
        device::KernelCost row = cost_with(
            {mix_lens[r]}, {0, fresh}, (int64_t)fresh);
        sum_flops += row.flops;
        sum_bytes += row.bytes;
    }
    EXPECT_DOUBLE_EQ(packed.flops, sum_flops);
    // Byte streams agree up to the cu_fresh metadata the per-row split
    // duplicates: four {0, fresh} tensors hold 8 entries where the
    // packed call's [b+1] holds 5 — three extra i64s.
    EXPECT_DOUBLE_EQ(packed.bytes + 3 * 8.0, sum_bytes);

    // Padded bucket bindings: zero-filled phantom rows (padForPricing's
    // contract) must price nothing — the clamp max(cu[i+1]-cu[i], 0)
    // ignores the zero tail.
    device::KernelCost bucketed = cost_with(
        {0, 10, 2, 5, 0, 0}, {0, 4, 5, 8, 9, 0, 0}, 9);
    EXPECT_DOUBLE_EQ(bucketed.flops, packed.flops);
}

TEST(VMTest, DisassemblyIsReadable)
{
    frontend::CompileOptions options;
    options.device = hostDevice()->spec();
    ExecutablePtr exec = frontend::compile(buildChain(), options);
    std::string text = toString(exec->functions.at("main"));
    EXPECT_NE(text.find("vm_function main"), std::string::npos);
    EXPECT_NE(text.find("kernel_call"), std::string::npos);
    EXPECT_NE(text.find("match_shape"), std::string::npos);
    EXPECT_NE(text.find("alloc_storage"), std::string::npos);
}

} // namespace
} // namespace vm
} // namespace relax
