/**
 * @file
 * Bucketed execution-graph capture/replay tests: equivalence (the same
 * program produces bit-identical data-mode outputs with bucketed capture
 * on and off), counter-based hit-rate assertions for steady-state decode
 * (no wall-clock dependence), and padded-pricing determinism (every shape
 * in a bucket is priced at the bucket ceiling on the virtual clock).
 */
#include <gtest/gtest.h>

#include "frontend/compile.h"
#include "frontend/llama.h"
#include "op/ops.h"
#include "shape/block_builder.h"
#include "vm/vm.h"

namespace relax {
namespace vm {
namespace {

using namespace ir;
using Var = ir::Var;

/** x:(n,4) -> exp -> relu -> add(x), a 3-kernel graph region when
 *  compiled without fusion. */
ir::IRModulePtr
buildChain()
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(4)}, DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::exp(x));
    Var lv1 = builder.emit(op::relu(lv0));
    Var out = builder.emitOutput(op::add(lv1, x));
    builder.endBlock();
    module->addFunction("main", makeFunction({x}, builder.finish(out),
                                             out->structInfo()));
    return module;
}

/** A CPU-like data-capable device that also supports execution graphs,
 *  so data-mode runs exercise capture/replay. */
device::DeviceSpec
graphCapableHost()
{
    device::DeviceSpec spec;
    spec.name = "host-graphs";
    spec.backend = "cpu";
    spec.vramBytes = int64_t(64) << 30;
    spec.supportsExecutionGraphs = true;
    return spec;
}

frontend::CompileOptions
chainOptions(int64_t bucket_tokens)
{
    frontend::CompileOptions options;
    options.device = graphCapableHost();
    options.bounds = {{"n", 64}};      // static plan enables capture
    options.enableFusion = false;      // keep a multi-kernel region
    options.graphBucketTokens = bucket_tokens;
    return options;
}

TEST(GraphReplayTest, BucketedCaptureMatchesExactExecution)
{
    // The padding-correctness invariant, observed end to end: for every
    // shape in a bucket, the bucketed executable must produce exactly
    // the bytes the exact-signature executable produces.
    auto bucketed_dev = std::make_shared<device::SimDevice>(graphCapableHost());
    auto exact_dev = std::make_shared<device::SimDevice>(graphCapableHost());
    VirtualMachine bucketed(frontend::compile(buildChain(), chainOptions(16)),
                            bucketed_dev, /*data_mode=*/true);
    VirtualMachine exact(frontend::compile(buildChain(), chainOptions(1)),
                         exact_dev, /*data_mode=*/true);

    int64_t regions = -1; // graph regions per invoke (shape-independent)
    for (int64_t rows : {3, 5, 9, 16, 17, 31}) {
        NDArray x = NDArray::zeros({rows, 4}, DataType::f32());
        for (int64_t i = 0; i < x.numel(); ++i) {
            x.set(i, 0.25 * (double)(i % 11) - 1.0);
        }
        NDArray a = std::get<NDArray>(bucketed.invoke("main", {x}));
        NDArray b = std::get<NDArray>(exact.invoke("main", {x}));
        if (regions < 0) {
            regions = bucketed.lastRunStats().graphBegins;
            ASSERT_GT(regions, 0) << "no capturable graph region compiled";
        }
        ASSERT_EQ(a.shape(), b.shape()) << "rows=" << rows;
        EXPECT_EQ(a.data(), b.data()) << "rows=" << rows;
    }

    // Counter-based replay accounting against the bucket ceilings
    // (next block multiple, or next power of two when smaller):
    // 3 -> 4, 5 -> 8, 9 and 16 -> 16, 17 and 31 -> 32. Four fresh
    // buckets capture; 16 and 31 replay.
    EXPECT_EQ(bucketed.graphStats().begins, 6 * regions);
    EXPECT_EQ(bucketed.graphStats().captures, 4 * regions);
    EXPECT_EQ(bucketed.graphStats().replays, 2 * regions);
    // Exact signatures never coincide across distinct shapes: no replays.
    EXPECT_EQ(exact.graphStats().begins, 6 * regions);
    EXPECT_EQ(exact.graphStats().captures, 6 * regions);
    EXPECT_EQ(exact.graphStats().replays, 0);
}

TEST(GraphReplayTest, BucketPricesAtCeilingDeterministically)
{
    // Every shape within one bucket (rows 9..16 -> ceiling 16) executes
    // the same padded graph, so the virtual clock must charge the same
    // latency for each of them (first capture excluded). No libraries on
    // this host device, so every kernel is generated and priced through
    // the padded binding.
    auto dev = std::make_shared<device::SimDevice>(graphCapableHost());
    VirtualMachine machine(frontend::compile(buildChain(), chainOptions(16)),
                           dev, /*data_mode=*/false);
    machine.invoke("main", {NDArray::metaOnly({9, 4}, DataType::f32())});
    double replay_latency = -1.0;
    for (int64_t rows : {10, 12, 14, 16}) {
        machine.invoke("main",
                       {NDArray::metaOnly({rows, 4}, DataType::f32())});
        EXPECT_EQ(machine.lastRunStats().graphCaptures, 0)
            << "rows=" << rows;
        EXPECT_GT(machine.lastRunStats().graphReplays, 0)
            << "rows=" << rows;
        if (replay_latency < 0) {
            replay_latency = machine.lastRunStats().latencyUs;
        } else {
            EXPECT_DOUBLE_EQ(machine.lastRunStats().latencyUs,
                             replay_latency)
                << "rows=" << rows;
        }
    }
}

/** x:(n,8) @ w:(8,8) -> add(x): a library GEMM (symbolic row count
 *  dispatches to cublas) followed by a generated kernel — one region. */
ir::IRModulePtr
buildLibChain()
{
    auto module = IRModule::create();
    shape::BlockBuilder builder(module);
    SymVar n = var("n");
    Var x = makeVar("x", tensorSInfo({n, intImm(8)}, DataType::f32()));
    Var w = makeVar("w", tensorSInfo({intImm(8), intImm(8)},
                                     DataType::f32()));
    builder.beginDataflowBlock();
    Var lv0 = builder.emit(op::matmul(x, w));
    Var out = builder.emitOutput(op::add(lv0, x));
    builder.endBlock();
    module->addFunction("main", makeFunction({x, w}, builder.finish(out),
                                             out->structInfo()));
    return module;
}

TEST(GraphReplayTest, LibraryKernelsPriceAtPaddedBindingInsideRegions)
{
    // The padding-correctness invariant for library callees: inside a
    // bucketed region every kernel conceptually launches at the bucket
    // ceiling, so a cublas GEMM must be priced at the padded shapes —
    // its live-shape cost would be cheaper (the PR-3 bounded optimism
    // this closes). Every shape in the 9..16 bucket must therefore
    // charge exactly what the ceiling shape n=16 charges.
    device::DeviceSpec spec = graphCapableHost();
    spec.backend = "cuda";
    spec.hasGemmLibrary = true;
    frontend::CompileOptions options;
    options.device = spec;
    options.bounds = {{"n", 64}};
    options.enableFusion = false;
    options.graphBucketTokens = 16;
    auto exec = frontend::compile(buildLibChain(), options);
    ASSERT_NE(toString(exec->functions.at("main")).find("[lib]"),
              std::string::npos)
        << "matmul did not dispatch to the library";

    auto dev = std::make_shared<device::SimDevice>(spec);
    VirtualMachine machine(exec, dev, /*data_mode=*/false);
    auto invoke = [&](int64_t rows) {
        machine.invoke("main",
                       {NDArray::metaOnly({rows, 8}, DataType::f32()),
                        NDArray::metaOnly({8, 8}, DataType::f32())});
        return machine.lastRunStats();
    };

    invoke(16); // capture the 9..16 bucket at its ceiling
    double ceiling_latency = invoke(16).latencyUs; // replay at the ceiling
    ASSERT_GT(machine.lastRunStats().graphReplays, 0);
    for (int64_t rows : {9, 11, 13, 15}) {
        RunStats stats = invoke(rows);
        EXPECT_EQ(stats.graphCaptures, 0) << "rows=" << rows;
        EXPECT_GT(stats.graphReplays, 0) << "rows=" << rows;
        EXPECT_DOUBLE_EQ(stats.latencyUs, ceiling_latency)
            << "rows=" << rows;
    }
}

/** Decode-step arguments for a tiny Llama (metadata-only, timing mode). */
std::vector<Value>
tinyDecodeArgs(const frontend::LlamaConfig& config, int64_t batch,
               int64_t ctx)
{
    std::vector<Value> args;
    args.emplace_back(NDArray::metaOnly({batch, 1}, DataType::i64()));
    for (int64_t layer = 0; layer < config.numLayers; ++layer) {
        for (int kv = 0; kv < 2; ++kv) {
            args.emplace_back(NDArray::metaOnly(
                {batch, config.numHeads, ctx, config.headDim},
                DataType::f16()));
        }
    }
    for (auto& w :
         frontend::makeLlamaWeights(config, /*with_data=*/false)) {
        args.emplace_back(std::move(w));
    }
    return args;
}

TEST(GraphReplayTest, SteadyStateDecodeReportsReplayHits)
{
    // The serving decode pattern: the context length m grows by one every
    // step. With the signature bucketed to the KV block size, only the
    // step that crosses a block boundary captures; every other step is a
    // replay hit. Counter-based — no wall-clock assertions.
    const int64_t block = 16;
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    frontend::CompileOptions options;
    options.device = graphCapableHost();
    options.bounds = {{"b", 4}, {"n", 32}, {"m", 64}};
    options.graphBucketTokens = block;
    auto exec = frontend::compile(frontend::buildLlama(config), options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    VirtualMachine machine(exec, dev, /*data_mode=*/false);

    // Warm the first bucket.
    machine.invoke("decode", tinyDecodeArgs(config, 2, 17));
    ASSERT_GT(machine.lastRunStats().graphBegins, 0)
        << "decode compiled without a capturable graph region";
    EXPECT_EQ(machine.lastRunStats().graphReplays, 0);

    int64_t boundary_crossings = 0;
    for (int64_t m = 18; m <= 48; ++m) {
        machine.invoke("decode", tinyDecodeArgs(config, 2, m));
        const RunStats& stats = machine.lastRunStats();
        if ((m - 1) / block != (m - 1 - 1) / block) {
            // First step inside a fresh bucket: captures, no hits.
            EXPECT_EQ(stats.graphReplays, 0) << "m=" << m;
            EXPECT_EQ(stats.graphCaptures, stats.graphBegins) << "m=" << m;
            ++boundary_crossings;
        } else {
            // Steady state: every graph region replays.
            EXPECT_EQ(stats.graphCaptures, 0) << "m=" << m;
            EXPECT_EQ(stats.graphReplays, stats.graphBegins) << "m=" << m;
        }
    }
    // Buckets are ceil(m/16)*16: m=17..32 -> 32, m=33..48 -> 48. The one
    // boundary crossing in 18..48 is m=33.
    EXPECT_EQ(boundary_crossings, 1);
    EXPECT_GE(machine.graphStats().hitRate(), 0.8);
}

TEST(GraphReplayTest, ExactSignaturesNeverReplayGrowingDecode)
{
    // Control: without bucketing, the growing context length makes every
    // decode step a fresh signature — replay never engages, which is the
    // serving-path gap this PR closes.
    frontend::LlamaConfig config = frontend::LlamaConfig::tiny();
    frontend::CompileOptions options;
    options.device = graphCapableHost();
    options.bounds = {{"b", 4}, {"n", 32}, {"m", 64}};
    options.graphBucketTokens = 1;
    auto exec = frontend::compile(frontend::buildLlama(config), options);
    auto dev = std::make_shared<device::SimDevice>(options.device);
    VirtualMachine machine(exec, dev, /*data_mode=*/false);
    for (int64_t m = 17; m <= 32; ++m) {
        machine.invoke("decode", tinyDecodeArgs(config, 2, m));
    }
    EXPECT_GT(machine.graphStats().begins, 0);
    EXPECT_EQ(machine.graphStats().replays, 0);
}

} // namespace
} // namespace vm
} // namespace relax
