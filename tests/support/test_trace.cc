/**
 * @file
 * Tests for the TraceRecorder: the zero-cost-when-disabled invariant,
 * event recording, the well-nestedness structural check, Chrome
 * trace-event JSON export, and byte-determinism of the serialization.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/trace.h"

namespace relax {
namespace {

TEST(TraceTest, DisabledRecorderRecordsNothing)
{
    TraceRecorder trace;
    EXPECT_FALSE(trace.enabled());
    trace.span(0, 0, "k", "kernel", 0.0, 5.0);
    trace.instant(0, 0, "i", "event", 1.0);
    trace.asyncBegin(0, 0, "r", "request", 7, 0.0);
    trace.asyncEnd(0, 0, "r", "request", 7, 9.0);
    trace.counter(0, 0, "c", 2.0, {{"v", (int64_t)1}});
    EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, RecordsEventsWithArgsInInsertionOrder)
{
    TraceRecorder trace;
    trace.enable();
    trace.span(trace_lanes::kDevice, trace_lanes::kKernels, "matmul",
               "kernel", 10.0, 4.0,
               {{"flops", (int64_t)128}, {"replay", (int64_t)1}});
    trace.instant(trace_lanes::kEngine, trace_lanes::kRequests, "admit",
                  "lifecycle", 11.0, {{"request", (int64_t)3}});
    ASSERT_EQ(trace.events().size(), 2u);
    const TraceRecorder::Event& span = trace.events()[0];
    EXPECT_EQ(span.ph, 'X');
    EXPECT_EQ(span.name, "matmul");
    EXPECT_DOUBLE_EQ(span.ts, 10.0);
    EXPECT_DOUBLE_EQ(span.dur, 4.0);
    ASSERT_EQ(span.args.size(), 2u);
    EXPECT_EQ(span.args[0].key, "flops");
    EXPECT_EQ(span.args[0].i, 128);
    EXPECT_EQ(trace.events()[1].ph, 'i');

    trace.clear();
    EXPECT_TRUE(trace.events().empty());
    EXPECT_TRUE(trace.enabled()); // clear drops events, not the switch
}

TEST(TraceTest, WellNestedAcceptsContainmentAndDisjoint)
{
    TraceRecorder trace;
    trace.enable();
    // outer [0, 10) contains inner [2, 5); [12, 14) is disjoint.
    trace.span(0, 0, "outer", "c", 0.0, 10.0);
    trace.span(0, 0, "inner", "c", 2.0, 3.0);
    trace.span(0, 0, "later", "c", 12.0, 2.0);
    // A same-boundary span on ANOTHER lane must not interact.
    trace.span(1, 0, "other-lane", "c", 4.0, 100.0);
    std::string error;
    EXPECT_TRUE(trace.wellNested(&error)) << error;
}

TEST(TraceTest, WellNestedRejectsPartialOverlap)
{
    TraceRecorder trace;
    trace.enable();
    trace.span(0, 0, "a", "c", 0.0, 10.0);
    trace.span(0, 0, "b", "c", 5.0, 10.0); // straddles a's end
    std::string error;
    EXPECT_FALSE(trace.wellNested(&error));
    EXPECT_FALSE(error.empty());
}

TEST(TraceTest, AsyncPairsAndInstantsAreExemptFromNesting)
{
    TraceRecorder trace;
    trace.enable();
    // Two overlapping request lifetimes on one lane: legal for 'b'/'e'.
    trace.asyncBegin(2, 1, "request", "request", 0, 0.0);
    trace.asyncBegin(2, 1, "request", "request", 1, 5.0);
    trace.asyncEnd(2, 1, "request", "request", 0, 8.0);
    trace.asyncEnd(2, 1, "request", "request", 1, 12.0);
    trace.instant(2, 1, "tick", "c", 6.0);
    EXPECT_TRUE(trace.wellNested());
}

TEST(TraceTest, ChromeTraceJsonCarriesLanesEventsAndArgs)
{
    TraceRecorder trace;
    trace.enable();
    trace.span(trace_lanes::kDevice, trace_lanes::kKernels, "gemm",
               "kernel", 1.5, 2.25,
               {{"bytes", (int64_t)64},
                {"label", std::string("a\"b")}, // needs escaping
                {"ratio", 0.5}});
    trace.asyncBegin(trace_lanes::kEngine, trace_lanes::kRequests,
                     "request", "request", 42, 3.0);
    std::ostringstream os;
    trace.writeChromeTrace(os);
    std::string json = os.str();
    // Lane metadata + the events themselves.
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.250"), std::string::npos);
    EXPECT_NE(json.find("\"bytes\":64"), std::string::npos);
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":\"42\""), std::string::npos);
}

TEST(TraceTest, SerializationIsByteDeterministic)
{
    auto build = [] {
        TraceRecorder trace;
        trace.enable();
        trace.span(0, 0, "k", "kernel", 0.125, 3.375,
                   {{"flops", (int64_t)7}, {"ratio", 1.0 / 3.0}});
        trace.instant(2, 1, "evt", "lifecycle", 9.0);
        std::ostringstream os;
        trace.writeChromeTrace(os);
        return os.str();
    };
    EXPECT_EQ(build(), build());
}

} // namespace
} // namespace relax
