/**
 * @file
 * Tests for the MetricsRegistry: counter/gauge/histogram semantics, the
 * nearest-rank percentile convention (shared with the serving bench),
 * create-on-first-use naming, and deterministic JSON snapshots.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "support/metrics.h"

namespace relax {
namespace {

TEST(MetricsTest, CounterIsMonotonic)
{
    Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeTracksLastMinMaxMean)
{
    Gauge g;
    EXPECT_EQ(g.samples(), 0);
    EXPECT_DOUBLE_EQ(g.mean(), 0.0);
    g.sample(4.0);
    g.sample(2.0);
    g.sample(6.0);
    EXPECT_DOUBLE_EQ(g.last(), 6.0);
    EXPECT_DOUBLE_EQ(g.min(), 2.0);
    EXPECT_DOUBLE_EQ(g.max(), 6.0);
    EXPECT_DOUBLE_EQ(g.mean(), 4.0);
    EXPECT_EQ(g.samples(), 3);
}

TEST(MetricsTest, HistogramPercentileUsesNearestRank)
{
    Histogram h;
    // Recorded out of order on purpose: percentile() sorts lazily.
    for (double v : {50.0, 10.0, 40.0, 20.0, 30.0}) h.record(v);
    EXPECT_EQ(h.count(), 5);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 50.0);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
    // Nearest rank: idx = round((n - 1) * p), the bench's convention.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 50.0);
    // Recording after a percentile() read still works (re-sorts).
    h.record(5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 5.0);
}

TEST(MetricsTest, RegistryCreatesOnFirstUseAndKeepsIdentity)
{
    MetricsRegistry registry;
    registry.counter("serve.evictions").add(3);
    registry.counter("serve.evictions").add(); // same instance
    EXPECT_EQ(registry.counter("serve.evictions").value(), 4);
    registry.histogram("serve.ttft_us").record(100.0);
    EXPECT_EQ(registry.histograms().at("serve.ttft_us").count(), 1);
    EXPECT_EQ(registry.counters().size(), 1u);
}

TEST(MetricsTest, SnapshotJsonIsDeterministicAndNameOrdered)
{
    auto build = [] {
        MetricsRegistry registry;
        // Inserted in non-alphabetical order; the snapshot must sort.
        registry.counter("zeta").add(2);
        registry.counter("alpha").add(1);
        registry.gauge("kv.occupancy").sample(0.5);
        registry.histogram("ttft").record(10.0);
        registry.histogram("ttft").record(30.0);
        std::ostringstream os;
        registry.snapshotJson(os);
        return os.str();
    };
    std::string json = build();
    EXPECT_EQ(json, build());
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
    EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"kv.occupancy\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\": 30.000"), std::string::npos);
}

} // namespace
} // namespace relax
