#!/usr/bin/env bash
# Tier-1 verification entry point — the exact command CI runs and ROADMAP.md
# names. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh                       # configure + build + ctest + bench smoke
#   BUILD_DIR=out scripts/check.sh         # alternate build directory
#   CMAKE_ARGS="-DRELAX_WERROR=ON" scripts/check.sh   # extra configure flags
#   CTEST_ARGS='-R (serve|vm)\.' scripts/check.sh     # run a subset of suites
#   SKIP_BENCH=1 scripts/check.sh          # skip the bench smoke runs
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-build}"

cd "$repo_root"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$build_dir" -S . ${CMAKE_ARGS:-}
cmake --build "$build_dir" -j
cd "$build_dir"
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
ctest --output-on-failure -j "$jobs" ${CTEST_ARGS:-}

if [[ "${SKIP_BENCH:-0}" == 1 ]]; then
  echo "== bench smoke skipped (SKIP_BENCH=1)"
  exit 0
fi

# Smoke-run the bench harness (timing mode, fast) so driver rot is caught:
# one paper-figure driver plus the serving-throughput driver.
echo "== bench smoke: fig14 nvidia decode"
./bench_fig14_nvidia_decode > /dev/null
echo "== bench smoke: serve throughput"
serve_out="$(./bench_serve_throughput)"
printf '%s\n' "$serve_out"

# Zero-relayout gate (DESIGN.md §5): the page-pool serving path must
# never copy cache bytes on the host — EngineStats.relayoutBytes is a
# tripwire that any future host-side cache stack/split/pad must
# increment, and this gate turns tripping it into a tier-1 failure.
relayout="$(printf '%s\n' "$serve_out" |
  sed -n 's/^host cache relayout bytes: \([0-9]*\)$/\1/p' | tail -1)"
if [[ -z "$relayout" ]]; then
  echo "FAIL: bench_serve_throughput did not report relayout bytes" >&2
  exit 1
fi
if [[ "$relayout" != 0 ]]; then
  echo "FAIL: serving relayouted ${relayout} cache bytes on the host" \
       "(page-pool decode must relayout none)" >&2
  exit 1
fi
echo "zero-relayout gate passed (0 host cache bytes copied)"

# Regression guard for bucketed execution-graph capture: steady-state
# decode must replay captured graphs at the documented >= 80% post-warmup
# rate (docs/BENCHMARKS.md). Anything lower means the serving path is
# re-capturing instead of replaying (the pre-bucketing gap, or a
# signature churn regression).
min_hit_rate=80
hit_rate="$(printf '%s\n' "$serve_out" |
  sed -n 's/^decode replay hit-rate after warmup: \([0-9.]*\)%$/\1/p' |
  tail -1)"
if [[ -z "$hit_rate" ]]; then
  echo "FAIL: bench_serve_throughput did not report a replay hit-rate" >&2
  exit 1
fi
if ! awk -v rate="$hit_rate" -v min="$min_hit_rate" \
    'BEGIN { exit (rate >= min) ? 0 : 1 }'; then
  echo "FAIL: decode replay hit-rate after warmup is ${hit_rate}%" \
       "(threshold ${min_hit_rate}%)" >&2
  exit 1
fi
echo "decode replay hit-rate gate passed (${hit_rate}% >= ${min_hit_rate}%)"

# Speculative decoding gates (DESIGN.md §8). The --spec-k run sweeps
# synthetic acceptance rates; the binary gates the per-rate invariants
# (one target call per step, zero relayout, pool within budget, token
# counts unchanged). Here we pin two things on top:
#  1. the k=0 baseline inside the speculative binary is byte-identical
#     to the plain run's FCFS result — merely carrying the speculation
#     machinery may not perturb the non-speculative path;
#  2. tokens/s uplift at high acceptance is real (> 1.0x).
echo "== bench smoke: serve throughput (speculative, k=4)"
spec_out="$(./bench_serve_throughput --spec-k=4 --bench-json=bench_spec.json)"
printf '%s\n' "$spec_out" | sed -n '/^speculative decoding/,$p'
plain_fcfs="$(printf '%s\n' "$serve_out" | sed -n 's/^fcfs throughput: //p')"
spec_fcfs="$(printf '%s\n' "$spec_out" | sed -n 's/^fcfs throughput: //p')"
if [[ -z "$spec_fcfs" || "$spec_fcfs" != "$plain_fcfs" ]]; then
  echo "FAIL: speculation-off baseline drifted inside the --spec-k run" \
       "('$spec_fcfs' vs '$plain_fcfs')" >&2
  exit 1
fi
echo "speculation-off identity gate passed (k=0 FCFS: ${spec_fcfs})"
uplift="$(printf '%s\n' "$spec_out" |
  sed -n 's/^speculation uplift at 0.95 acceptance: \([0-9.]*\)x$/\1/p' |
  tail -1)"
if [[ -z "$uplift" ]]; then
  echo "FAIL: --spec-k run did not report an uplift" >&2
  exit 1
fi
if ! awk -v u="$uplift" 'BEGIN { exit (u > 1.0) ? 0 : 1 }'; then
  echo "FAIL: speculative decoding uplift is ${uplift}x (must be > 1)" >&2
  exit 1
fi
echo "speculation uplift gate passed (${uplift}x at 0.95 acceptance)"

# Tensor-parallel gates (DESIGN.md §10). The --tp=4 run shards the
# serving model across four simulated devices with priced ring
# collectives; the binary itself gates the >= 2x saturated speedup, the
# one-call-per-step invariant under sharding, and that the collectives
# carry nonzero time. Here we pin the single-device contract on top:
# a --tp=1 invocation must be byte-identical to the default run — the
# tensor-parallel machinery may not perturb the tp=1 path at all.
echo "== bench smoke: serve throughput (tensor parallel)"
./bench_serve_throughput --tp=1 --bench-json=bench_tp1.json > /dev/null
if ! cmp -s BENCH_serve.json bench_tp1.json; then
  echo "FAIL: --tp=1 bench JSON differs from the default run" \
       "(tensor-parallel plumbing perturbed the single-device path)" >&2
  exit 1
fi
echo "tp=1 identity gate passed (bench JSON byte-identical)"
tp_out="$(./bench_serve_throughput --tp=4 --bench-json=bench_tp4.json)"
printf '%s\n' "$tp_out" | sed -n '/^tensor parallel/p'
if ! printf '%s\n' "$tp_out" | grep -q '^tensor parallel (tp = 4'; then
  echo "FAIL: --tp=4 run did not report a tensor-parallel result" >&2
  exit 1
fi
echo "tensor-parallel gates passed (speedup and collective pricing" \
     "enforced inside the binary)"

# Cluster-router gates: the overload bench fails internally when the
# shed arm does not improve admitted p99 TTFT >= 4x over the unshedded
# control at 2.5x offered load, when shedding rejects everything, or
# when per-tenant budgets fail to isolate the flooding tenant.
echo "== bench smoke: router overload"
./bench_router_overload --bench-json=bench_router.json |
  sed -n '/^admitted p99/p;/^tenant budgets/p'
echo "router overload gates passed (p99 bound, shed valve, tenant budgets)"

# Observability gates (DESIGN.md §7). The instrumented bench run gates
# inside the binary that >= 95% of graph regions inside pure-decode step
# spans are replay-flagged and that enabling tracing does not perturb
# the simulated run; here we pin the two exported artifacts themselves:
#  1. determinism — two identical seeded runs must produce byte-identical
#     trace and metrics JSON (fixed float formatting, insertion order);
#  2. validity — every exported file parses as JSON.
echo "== bench smoke: serve throughput (traced, determinism tripwire)"
./bench_serve_throughput --trace-out=trace_a.json --metrics-out=metrics_a.json \
  --bench-json=bench_a.json > /dev/null
./bench_serve_throughput --trace-out=trace_b.json --metrics-out=metrics_b.json \
  --bench-json=bench_b.json > /dev/null
for pair in "trace_a.json trace_b.json" "metrics_a.json metrics_b.json" \
            "bench_a.json bench_b.json"; do
  # shellcheck disable=SC2086  # pair is two known filenames
  if ! cmp -s $pair; then
    echo "FAIL: identical seeded runs produced different JSON ($pair)" >&2
    exit 1
  fi
done
echo "determinism tripwire passed (trace/metrics/bench JSON byte-identical)"

if command -v python3 > /dev/null; then
  for f in trace_a.json metrics_a.json bench_a.json bench_spec.json \
           bench_tp4.json bench_router.json; do
    if ! python3 -m json.tool "$f" > /dev/null; then
      echo "FAIL: $f is not valid JSON" >&2
      exit 1
    fi
  done
  echo "exported JSON validated (trace, metrics, bench snapshot)"
else
  echo "python3 not found; skipping JSON schema validation"
fi

# Aliasing-contract gates (DESIGN.md §9). The serve bench fails internally
# when InplacePlanPass rediscovers fewer than 3 in-place rewrites on the
# decode path; here we pin the exported plan report (Table 2 activation
# memory tracking) and the differential instrumentation:
#  1. the memory-plan line must be present (storages/bytes/reuse/in-place);
#  2. RELAX_ALIAS_CHECK=1 must not perturb the timing-mode run — the
#     shadow copy-in/copy-out reference only engages in data mode;
#  3. the 40-seed fuzz corpus re-runs with every in-place kernel executed
#     twice (aliased vs copy-in/copy-out) and bit-compared.
plan_line="$(printf '%s\n' "$serve_out" | sed -n 's/^memory plan: //p' | tail -1)"
if [[ -z "$plan_line" ]]; then
  echo "FAIL: bench_serve_throughput did not report a memory plan" >&2
  exit 1
fi
echo "memory plan report: ${plan_line}"

echo "== bench smoke: serve throughput (RELAX_ALIAS_CHECK identity)"
alias_out="$(RELAX_ALIAS_CHECK=1 ./bench_serve_throughput)"
base_fcfs="$(printf '%s\n' "$serve_out" | sed -n 's/^fcfs throughput: //p')"
alias_fcfs="$(printf '%s\n' "$alias_out" | sed -n 's/^fcfs throughput: //p')"
if [[ -z "$alias_fcfs" || "$alias_fcfs" != "$base_fcfs" ]]; then
  echo "FAIL: RELAX_ALIAS_CHECK perturbed the timing-mode bench" \
       "('$alias_fcfs' vs '$base_fcfs')" >&2
  exit 1
fi
echo "alias-check identity gate passed (FCFS: ${alias_fcfs})"

echo "== instrumented fuzz smoke (differential alias verification)"
RELAX_ALIAS_CHECK=1 RELAX_VERIFY_ALIAS=1 \
  ./test_serve --gtest_filter='FuzzTraceTest.*' > /dev/null
echo "instrumented fuzz smoke passed (in-place kernels bit-identical)"
