#!/usr/bin/env bash
# Tier-1 verification entry point — the exact command CI runs and ROADMAP.md
# names. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh                       # configure + build + ctest + bench smoke
#   BUILD_DIR=out scripts/check.sh         # alternate build directory
#   CMAKE_ARGS="-DRELAX_WERROR=ON" scripts/check.sh   # extra configure flags
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-build}"

cd "$repo_root"
# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$build_dir" -S . ${CMAKE_ARGS:-}
cmake --build "$build_dir" -j
cd "$build_dir"
ctest --output-on-failure -j

# Smoke-run the bench harness (timing mode, fast) so driver rot is caught:
# one paper-figure driver plus the serving-throughput driver.
echo "== bench smoke: fig14 nvidia decode"
./bench_fig14_nvidia_decode > /dev/null
echo "== bench smoke: serve throughput"
./bench_serve_throughput
