#!/usr/bin/env bash
# Tier-1 verification entry point — the exact command CI runs and ROADMAP.md
# names. Run from anywhere; builds into <repo>/build.
#
#   scripts/check.sh            # configure + build + ctest
#   BUILD_DIR=out scripts/check.sh   # alternate build directory
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-build}"

cd "$repo_root"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j
cd "$build_dir"
ctest --output-on-failure -j
